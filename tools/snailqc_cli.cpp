/**
 * @file
 * snailqc — command-line front end to the library.
 *
 * Subcommands:
 *   topologies                       list registered topologies + metrics
 *   coords <gate> [params...]        Weyl coordinates and basis counts
 *   circuit <bench> <width>          benchmark circuit statistics
 *   parse <file.qasm>                import OpenQASM 2.0, print statistics
 *   transpile <bench> <width> <topology> <basis> [router] [seed]
 *                                    run the Fig. 10 pipeline, print
 *                                    metrics; <bench> may also be a
 *                                    .qasm file (width then ignored)
 *
 * Examples:
 *   snailqc topologies
 *   snailqc coords fsim 1.5708 0.5236
 *   snailqc circuit qv 16
 *   snailqc parse my_circuit.qasm
 *   snailqc transpile qaoa 14 corral11-16 sqiswap stochastic 7
 *   snailqc transpile my_circuit.qasm 0 tree-20 sqiswap
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "circuits/registry.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "ir/qasm.hpp"
#include "ir/qasm_parser.hpp"
#include "topology/registry.hpp"
#include "transpiler/pipeline.hpp"
#include "weyl/basis_counts.hpp"

namespace
{

using namespace snail;

int
usage()
{
    std::cerr <<
        "usage: snailqc <command> [args]\n"
        "  topologies\n"
        "  coords <gate> [params...]   (cx, cz, swap, iswap, sqiswap,\n"
        "                               syc, b, cp t, rzz t, fsim t p,\n"
        "                               zx t, nroot n, can a b c)\n"
        "  circuit <bench> <width>     (qv, qft, qaoa, tim, adder, ghz)\n"
        "  parse <file.qasm>\n"
        "  export <bench> <width>      (emit OpenQASM 2.0 on stdout)\n"
        "  transpile <bench|file.qasm> <width> <topology> <basis>\n"
        "            [basic|stochastic|sabre|lookahead] [seed]\n";
    return 2;
}

Gate
parseGate(const std::vector<std::string> &args)
{
    SNAIL_REQUIRE(!args.empty(), "missing gate name");
    const std::string &name = args[0];
    auto param = [&](std::size_t i) {
        SNAIL_REQUIRE(args.size() > i, "gate " << name
                                               << " needs more parameters");
        return std::atof(args[i].c_str());
    };
    if (name == "cx") return gates::cx();
    if (name == "cz") return gates::cz();
    if (name == "swap") return gates::swapGate();
    if (name == "iswap") return gates::iswap();
    if (name == "sqiswap") return gates::sqiswap();
    if (name == "syc") return gates::sycamore();
    if (name == "b") return gates::bgate();
    if (name == "cp") return gates::cphase(param(1));
    if (name == "rzz") return gates::rzz(param(1));
    if (name == "zx") return gates::crossRes(param(1));
    if (name == "nroot") return gates::nrootIswap(param(1));
    if (name == "fsim") return gates::fsim(param(1), param(2));
    if (name == "can") return gates::canonical(param(1), param(2), param(3));
    SNAIL_THROW("unknown gate: " << name);
}

BasisSpec
parseBasis(const std::string &name)
{
    BasisSpec spec;
    if (name == "cx" || name == "cnot") {
        spec.kind = BasisKind::CNOT;
    } else if (name == "sqiswap") {
        spec.kind = BasisKind::SqISwap;
    } else if (name == "iswap") {
        spec.kind = BasisKind::ISwap;
    } else if (name == "syc") {
        spec.kind = BasisKind::Sycamore;
    } else {
        SNAIL_THROW("unknown basis: " << name
                                      << " (cx|sqiswap|iswap|syc)");
    }
    return spec;
}

int
cmdTopologies()
{
    TableWriter table({"name", "qubits", "edges", "Dia", "AvgD", "AvgC"});
    for (const auto &name : topologyNames()) {
        const CouplingGraph g = namedTopology(name);
        table.addRow({name, std::to_string(g.numQubits()),
                      std::to_string(g.edgeCount()),
                      std::to_string(g.diameter()),
                      TableWriter::num(g.averageDistance(), 2),
                      TableWriter::num(g.averageDegree(), 2)});
    }
    table.print(std::cout);
    return 0;
}

int
cmdCoords(const std::vector<std::string> &args)
{
    const Gate gate = parseGate(args);
    const WeylCoords w = weylCoordinates(gate);
    std::cout << gate.name() << " Weyl coordinates (pi units): ("
              << w.a / M_PI << ", " << w.b / M_PI << ", " << w.c / M_PI
              << ")\n";
    TableWriter table({"basis", "count", "duration"});
    for (BasisKind kind : {BasisKind::CNOT, BasisKind::SqISwap,
                           BasisKind::ISwap, BasisKind::Sycamore}) {
        BasisSpec spec;
        spec.kind = kind;
        table.addRow({spec.name(),
                      std::to_string(basisCount(spec, w)),
                      TableWriter::num(basisDuration(spec, w), 2)});
    }
    table.print(std::cout);
    return 0;
}

int
cmdCircuit(const std::vector<std::string> &args)
{
    SNAIL_REQUIRE(args.size() >= 2, "circuit needs <bench> <width>");
    const Circuit c = makeBenchmark(args[0], std::atoi(args[1].c_str()));
    std::cout << c.name() << ": " << c.size() << " gates ("
              << c.countTwoQubit() << " 2Q), 2Q depth "
              << c.twoQubitDepth() << "\n";
    if (c.size() <= 64) {
        c.dump(std::cout);
    }
    return 0;
}

/** True when the argument looks like a QASM file path. */
bool
isQasmPath(const std::string &arg)
{
    return arg.size() > 5 && arg.substr(arg.size() - 5) == ".qasm";
}

int
cmdParse(const std::vector<std::string> &args)
{
    SNAIL_REQUIRE(!args.empty(), "parse needs <file.qasm>");
    const QasmParseResult result = parseQasmFile(args[0]);
    const Circuit &c = result.circuit;
    std::cout << args[0] << ": " << c.numQubits() << " qubits, " << c.size()
              << " gates (" << c.countTwoQubit() << " 2Q), 2Q depth "
              << c.twoQubitDepth() << ", " << result.measurements.size()
              << " measurements\n";
    for (const auto &reg : result.qregs) {
        std::cout << "  qreg " << reg.name << '[' << reg.size
                  << "] -> qubits " << reg.offset << ".."
                  << reg.offset + reg.size - 1 << "\n";
    }
    if (c.size() <= 64) {
        c.dump(std::cout);
    }
    return 0;
}

int
cmdExport(const std::vector<std::string> &args)
{
    SNAIL_REQUIRE(args.size() >= 2, "export needs <bench> <width>");
    const Circuit c = makeBenchmark(args[0], std::atoi(args[1].c_str()));
    if (isQasmExportable(c)) {
        writeQasm(std::cout, c);
    } else {
        // Lower exotic kinds (Haar SU(4) blocks etc.) to CNOT first.
        writeQasm(std::cout, expandToBasis(c, BasisSpec{BasisKind::CNOT}));
    }
    return 0;
}

int
cmdTranspile(const std::vector<std::string> &args)
{
    SNAIL_REQUIRE(args.size() >= 4,
                  "transpile needs <bench> <width> <topology> <basis>");
    const Circuit circuit =
        isQasmPath(args[0]) ? parseQasmFile(args[0]).circuit
                            : makeBenchmark(args[0],
                                            std::atoi(args[1].c_str()));
    const CouplingGraph device = namedTopology(args[2]);

    TranspileOptions options;
    options.basis = parseBasis(args[3]);
    if (args.size() >= 5) {
        if (args[4] == "basic") {
            options.router = RouterKind::Basic;
        } else if (args[4] == "stochastic") {
            options.router = RouterKind::Stochastic;
        } else if (args[4] == "sabre") {
            options.router = RouterKind::Sabre;
        } else if (args[4] == "lookahead") {
            options.router = RouterKind::Lookahead;
        } else {
            SNAIL_THROW("unknown router: " << args[4]);
        }
    }
    if (args.size() >= 6) {
        options.seed =
            static_cast<unsigned long long>(std::atoll(args[5].c_str()));
    }

    const TranspileResult r = transpile(circuit, device, options);
    std::cout << circuit.name() << " on " << device.name() << " ("
              << options.basis.name() << " basis):\n";
    TableWriter table({"metric", "value"});
    table.addRow({"SWAPs total", std::to_string(r.metrics.swaps_total)});
    table.addRow({"SWAPs critical path",
                  TableWriter::num(r.metrics.swaps_critical, 0)});
    table.addRow({"2Q ops after routing",
                  std::to_string(r.metrics.ops_2q_pre)});
    table.addRow({"native 2Q pulses",
                  std::to_string(r.metrics.basis_2q_total)});
    table.addRow({"pulse duration (critical)",
                  TableWriter::num(r.metrics.duration_critical, 1)});
    table.addRow({"pulse duration (total)",
                  TableWriter::num(r.metrics.duration_total, 1)});
    table.print(std::cout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        return usage();
    }
    const std::string command = argv[1];
    std::vector<std::string> args;
    for (int i = 2; i < argc; ++i) {
        args.emplace_back(argv[i]);
    }
    try {
        if (command == "topologies") {
            return cmdTopologies();
        }
        if (command == "coords") {
            return cmdCoords(args);
        }
        if (command == "circuit") {
            return cmdCircuit(args);
        }
        if (command == "parse") {
            return cmdParse(args);
        }
        if (command == "export") {
            return cmdExport(args);
        }
        if (command == "transpile") {
            return cmdTranspile(args);
        }
        return usage();
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
