#!/usr/bin/env python3
"""Render the benchmark-history trajectory as a standalone SVG.

Usage:
    python3 tools/plot_trajectory.py [--history FILE] [--out FILE]
                                     [--metric cpu_time|real_time]

bench/BENCH_history.jsonl accumulates one JSON object per committed
benchmark run ({"benchmarks": {name: {cpu_time, ...}}, "label",
"time_utc"} — see tools/compare_bench.py).  This tool draws each
benchmark's metric over those runs, normalized to its first recorded
value, so a glance shows whether the hot paths are trending faster
(below 1.0) or slower (above 1.0) across the repo's history.

Pure standard library on purpose: CI's docs-smoke job runs it on a
bare python3 (no matplotlib) to keep the history file honest —
unparseable lines or a malformed record fail the job.  With a single
recorded run the plot is flat but still renders.

Exit status: 0 and the SVG path on stdout; 1 on a missing or
malformed history file.
"""

import argparse
import json
import sys

WIDTH, HEIGHT = 960, 520
MARGIN_L, MARGIN_R, MARGIN_T, MARGIN_B = 70, 260, 40, 60
PALETTE = [
    "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
    "#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
]


def load_history(path):
    """Parse the JSONL history into a list of run records."""
    runs = []
    with open(path) as handle:
        for number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise SystemExit(
                    f"{path}:{number}: unparseable history line: {error}")
            if "benchmarks" not in record:
                raise SystemExit(
                    f"{path}:{number}: record without 'benchmarks'")
            runs.append(record)
    if not runs:
        raise SystemExit(f"{path}: no runs recorded")
    return runs


def series_from(runs, metric):
    """Per-benchmark metric values across runs, first-run normalized."""
    names = sorted({name for run in runs for name in run["benchmarks"]})
    series = {}
    for name in names:
        values = []
        for run in runs:
            entry = run["benchmarks"].get(name)
            values.append(entry.get(metric) if entry else None)
        baseline = next((v for v in values if v), None)
        if baseline:
            series[name] = [
                v / baseline if v is not None else None for v in values
            ]
    return series


def svg_polyline(points, color):
    path = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
    return (f'<polyline points="{path}" fill="none" stroke="{color}" '
            f'stroke-width="1.5"/>')


def render(runs, series, metric):
    """The SVG document: normalized trajectories + legend + axes."""
    plot_w = WIDTH - MARGIN_L - MARGIN_R
    plot_h = HEIGHT - MARGIN_T - MARGIN_B
    n = len(runs)

    flat = [v for values in series.values() for v in values if v]
    lo, hi = min(flat + [1.0]), max(flat + [1.0])
    pad = (hi - lo) * 0.1 or 0.1
    lo, hi = lo - pad, hi + pad

    def sx(i):
        return MARGIN_L + (plot_w * i / max(n - 1, 1))

    def sy(v):
        return MARGIN_T + plot_h * (1 - (v - lo) / (hi - lo))

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" '
        f'height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}">',
        f'<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>',
        f'<text x="{MARGIN_L}" y="24" font-family="sans-serif" '
        f'font-size="15" font-weight="bold">snailqc benchmark '
        f'trajectory — {metric}, normalized to first run</text>',
    ]

    # Axes: the 1.0 baseline and one gridline per recorded run.
    parts.append(
        f'<line x1="{MARGIN_L}" y1="{sy(1.0):.1f}" '
        f'x2="{MARGIN_L + plot_w}" y2="{sy(1.0):.1f}" '
        f'stroke="#888" stroke-dasharray="4 3"/>')
    parts.append(
        f'<text x="{MARGIN_L - 8}" y="{sy(1.0) + 4:.1f}" '
        f'text-anchor="end" font-family="sans-serif" font-size="11" '
        f'fill="#555">1.0</text>')
    for i, run in enumerate(runs):
        label = run.get("label", f"run {i}")
        parts.append(
            f'<line x1="{sx(i):.1f}" y1="{MARGIN_T}" x2="{sx(i):.1f}" '
            f'y2="{MARGIN_T + plot_h}" stroke="#eee"/>')
        parts.append(
            f'<text x="{sx(i):.1f}" y="{HEIGHT - MARGIN_B + 18}" '
            f'text-anchor="middle" font-family="sans-serif" '
            f'font-size="10" fill="#555">{label[:18]}</text>')

    # One polyline per benchmark, legend on the right.
    for index, (name, values) in enumerate(sorted(series.items())):
        color = PALETTE[index % len(PALETTE)]
        points = [(sx(i), sy(v)) for i, v in enumerate(values)
                  if v is not None]
        if len(points) == 1:  # single run: draw a visible marker
            x, y = points[0]
            parts.append(f'<circle cx="{x:.1f}" cy="{y:.1f}" r="3" '
                         f'fill="{color}"/>')
        else:
            parts.append(svg_polyline(points, color))
        ly = MARGIN_T + 14 * index
        parts.append(
            f'<rect x="{WIDTH - MARGIN_R + 10}" y="{ly - 8}" width="10" '
            f'height="10" fill="{color}"/>')
        parts.append(
            f'<text x="{WIDTH - MARGIN_R + 26}" y="{ly + 1}" '
            f'font-family="sans-serif" font-size="10">{name}</text>')

    parts.append("</svg>")
    return "\n".join(parts)


def main():
    parser = argparse.ArgumentParser(
        description="Render bench/BENCH_history.jsonl as an SVG.")
    parser.add_argument("--history", default="bench/BENCH_history.jsonl")
    parser.add_argument("--out", default="bench_trajectory.svg")
    parser.add_argument("--metric", default="cpu_time",
                        choices=["cpu_time", "real_time"])
    arguments = parser.parse_args()

    try:
        runs = load_history(arguments.history)
    except OSError as error:
        raise SystemExit(f"cannot read history: {error}")

    series = series_from(runs, arguments.metric)
    if not series:
        raise SystemExit(
            f"{arguments.history}: no '{arguments.metric}' samples")

    with open(arguments.out, "w") as handle:
        handle.write(render(runs, series, arguments.metric))
    print(f"{arguments.out}: {len(series)} benchmarks over "
          f"{len(runs)} run(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
