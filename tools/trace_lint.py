#!/usr/bin/env python3
"""Validate a Chrome-trace-event JSON file written by --trace-out.

Usage:
    python3 tools/trace_lint.py [--require-cat CAT]... TRACE.json

A trace that Perfetto silently mis-renders is worse than no trace, so
this lints the contract src/obs/trace.cpp promises:

 1. the file is well-formed JSON with a "traceEvents" array;
 2. every event carries the required fields: "ph", "ts", "pid", "tid"
    ("name" additionally required on B and M events), with "ts" a
    number and "tid" an integer;
 3. every phase is one we emit — "B", "E", or "M" (metadata);
 4. per tid, B and E events balance like parentheses: every E closes
    an open B, and nothing is left open at the end of the thread's
    stream (writeJson closes still-open spans, so an unbalanced file
    means a writer bug, not an interrupted run);
 5. per tid, timestamps are non-decreasing (events are written in
    capture order; time going backwards would garble Perfetto's
    nesting).

--require-cat CAT (repeatable) additionally demands at least one B
event with that category — CI uses it to prove a traced sweep really
recorded pass/sched/cache/explore spans and not an empty shell.

Pure stdlib.  Exit status 0 on a clean trace, 1 on any violation
(messages on stderr).
"""

import argparse
import json
import sys

ALLOWED_PHASES = ("B", "E", "M")


def lint(doc, require_cats):
    """Return a list of violation strings (empty = clean)."""
    errors = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ['top-level "traceEvents" is missing or not an array']

    open_stacks = {}  # tid -> list of open span names
    last_ts = {}  # tid -> last timestamp seen
    seen_cats = set()

    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue

        phase = event.get("ph")
        if phase not in ALLOWED_PHASES:
            errors.append(f"{where}: ph={phase!r} not one of B/E/M")
            continue

        for field in ("ts", "pid", "tid"):
            if field not in event:
                errors.append(f"{where}: missing {field!r}")
        if not isinstance(event.get("ts"), (int, float)):
            errors.append(f"{where}: ts is not a number")
            continue
        if not isinstance(event.get("tid"), int):
            errors.append(f"{where}: tid is not an integer")
            continue
        if phase in ("B", "M") and not isinstance(event.get("name"), str):
            errors.append(f"{where}: {phase} event without a string name")
            continue

        tid = event["tid"]
        ts = event["ts"]
        if phase == "M":
            continue  # metadata carries ts=0; skip ordering checks

        if tid in last_ts and ts < last_ts[tid]:
            errors.append(
                f"{where}: ts {ts} goes backwards on tid {tid} "
                f"(previous {last_ts[tid]})"
            )
        last_ts[tid] = ts

        stack = open_stacks.setdefault(tid, [])
        if phase == "B":
            stack.append(event["name"])
            seen_cats.add(event.get("cat"))
        else:  # "E"
            if not stack:
                errors.append(f"{where}: E without an open B on tid {tid}")
            else:
                stack.pop()

    for tid, stack in sorted(open_stacks.items()):
        if stack:
            errors.append(
                f"tid {tid}: {len(stack)} span(s) left open at end of "
                f"stream (innermost: {stack[-1]!r})"
            )

    for cat in require_cats:
        if cat not in seen_cats:
            errors.append(
                f"no B event with cat={cat!r} "
                f"(categories present: {sorted(c for c in seen_cats if c)})"
            )

    return errors


def main(argv):
    parser = argparse.ArgumentParser(
        description="Lint a Chrome-trace JSON file from --trace-out."
    )
    parser.add_argument(
        "--require-cat",
        action="append",
        default=[],
        metavar="CAT",
        help="require at least one B event with this category (repeatable)",
    )
    parser.add_argument("trace", help="trace JSON file to validate")
    args = parser.parse_args(argv)

    try:
        with open(args.trace) as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"{args.trace}: {error}", file=sys.stderr)
        return 1

    errors = lint(doc, args.require_cat)
    if errors:
        for error in errors:
            print(f"{args.trace}: {error}", file=sys.stderr)
        return 1

    events = doc["traceEvents"]
    spans = sum(1 for e in events if e.get("ph") == "B")
    threads = len({e["tid"] for e in events if e.get("ph") != "M"})
    print(
        f"{args.trace}: OK — {len(events)} events, {spans} spans, "
        f"{threads} thread(s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
