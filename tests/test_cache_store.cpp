/**
 * @file
 * Tests for the persistent transpile store (explore/cache_store.hpp):
 * round-trips and reopen, payloads returned byte for byte, tolerance
 * of torn/corrupt/truncated entries (ignored, deleted, recomputed —
 * never propagated), the LRU byte-budget eviction, key separation,
 * concurrent readers and writers on one store, the hit/miss/eviction
 * counters, and the engine integration (a sweep served from the
 * store matches the cold run bit for bit).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "explore/cache_store.hpp"
#include "explore/engine.hpp"
#include "topology/registry.hpp"

namespace snail
{
namespace
{

namespace fs = std::filesystem;

/** Fresh empty directory under the test tmpdir. */
std::string
freshDir(const std::string &name)
{
    const std::string path = testing::TempDir() + name;
    fs::remove_all(path);
    return path;
}

CacheKey
makeKey(unsigned long long circuit, unsigned long long seed = 7)
{
    CacheKey key;
    key.circuit_hash = circuit;
    key.target_hash = 0xABCDULL;
    key.pipeline = "dense,stochastic-route=4,elide,basis=sqiswap";
    key.seed = seed;
    return key;
}

TEST(CacheStore, RoundTripsPayloadBytes)
{
    const std::string dir = freshDir("cache_roundtrip");
    CacheStore store(dir);

    const CacheKey key = makeKey(1);
    EXPECT_FALSE(store.fetch(key).has_value());

    const std::string payload = "{\"metrics\":{\"x\":1.25}}";
    store.store(key, payload);
    const std::optional<std::string> back = store.fetch(key);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, payload); // byte-identical, not just equivalent

    const CacheStoreStats stats = store.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.entries, 1u);
}

TEST(CacheStore, SurvivesReopen)
{
    const std::string dir = freshDir("cache_reopen");
    const CacheKey key = makeKey(2);
    const std::string payload = "persisted across processes";
    {
        CacheStore store(dir);
        store.store(key, payload);
    }
    CacheStore reopened(dir);
    EXPECT_EQ(reopened.stats().entries, 1u);
    const std::optional<std::string> back = reopened.fetch(key);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, payload);
}

TEST(CacheStore, KeysAreSeparate)
{
    const std::string dir = freshDir("cache_keys");
    CacheStore store(dir);
    store.store(makeKey(1), "one");
    store.store(makeKey(2), "two");
    store.store(makeKey(1, 8), "one-other-seed");

    CacheKey other_pipeline = makeKey(1);
    other_pipeline.pipeline = "dense,sabre-route,basis=sqiswap";
    store.store(other_pipeline, "one-other-pipeline");

    EXPECT_EQ(*store.fetch(makeKey(1)), "one");
    EXPECT_EQ(*store.fetch(makeKey(2)), "two");
    EXPECT_EQ(*store.fetch(makeKey(1, 8)), "one-other-seed");
    EXPECT_EQ(*store.fetch(other_pipeline), "one-other-pipeline");
}

TEST(CacheStore, CorruptEntryIsIgnoredAndDeleted)
{
    const std::string dir = freshDir("cache_corrupt");
    const CacheKey key = makeKey(3);
    CacheStore store(dir);
    store.store(key, "good payload");

    const std::string path = dir + "/" + CacheStore::entryName(key);
    {
        std::ofstream out(path, std::ios::trunc);
        out << "this is not json{{{";
    }

    EXPECT_FALSE(store.fetch(key).has_value());
    EXPECT_FALSE(fs::exists(path)) << "corrupt entry must be deleted";

    // Recompute path: a fresh store() fully heals the slot.
    store.store(key, "recomputed");
    EXPECT_EQ(*store.fetch(key), "recomputed");
}

TEST(CacheStore, TruncatedEntryIsIgnored)
{
    const std::string dir = freshDir("cache_truncated");
    const CacheKey key = makeKey(4);
    CacheStore store(dir);
    store.store(key, std::string(512, 'x'));

    // Simulate a torn write: valid JSON prefix chopped mid-payload.
    const std::string path = dir + "/" + CacheStore::entryName(key);
    fs::resize_file(path, fs::file_size(path) / 2);

    EXPECT_FALSE(store.fetch(key).has_value());
    EXPECT_FALSE(fs::exists(path));
}

TEST(CacheStore, ChecksumCatchesPayloadTampering)
{
    // Valid JSON with the right key but a flipped payload byte: the
    // CRC must reject it (defends torn page / bitrot, not attackers).
    const std::string dir = freshDir("cache_tamper");
    const CacheKey key = makeKey(5);
    CacheStore store(dir);
    store.store(key, "payload-AAAA");

    const std::string path = dir + "/" + CacheStore::entryName(key);
    std::string text;
    {
        std::ifstream in(path);
        text.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
    }
    const std::size_t pos = text.find("AAAA");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 4, "AAAB");
    {
        std::ofstream out(path, std::ios::trunc);
        out << text;
    }

    EXPECT_FALSE(store.fetch(key).has_value());
}

TEST(CacheStore, EvictsLeastRecentlyUsedUnderByteBudget)
{
    const std::string dir = freshDir("cache_evict");
    const std::string payload(400, 'p');

    // Budget fits ~4 entries (payload + JSON envelope).
    CacheStore store(dir, 4 * 700);
    for (unsigned long long i = 0; i < 4; ++i) {
        store.store(makeKey(i), payload);
    }
    ASSERT_EQ(store.stats().evictions, 0u);

    // Touch 0 so 1 becomes the coldest, then overflow the budget.
    ASSERT_TRUE(store.fetch(makeKey(0)).has_value());
    store.store(makeKey(100), payload);
    store.store(makeKey(101), payload);

    EXPECT_GT(store.stats().evictions, 0u);
    EXPECT_LE(store.stats().bytes, 4u * 700u);
    EXPECT_TRUE(store.fetch(makeKey(100)).has_value());
    EXPECT_TRUE(store.fetch(makeKey(101)).has_value());
    EXPECT_FALSE(store.fetch(makeKey(1)).has_value())
        << "coldest entry should have been evicted first";
}

TEST(CacheStore, OversizedSingleEntryStillServes)
{
    // One entry larger than the whole budget: eviction must not
    // delete the entry it just wrote (the size bound is best-effort
    // for the *steady state*, never a correctness gate).
    const std::string dir = freshDir("cache_oversize");
    CacheStore store(dir, 64);
    const CacheKey key = makeKey(6);
    store.store(key, std::string(512, 'z'));
    EXPECT_TRUE(store.fetch(key).has_value());
}

TEST(CacheStore, ConcurrentReadersAndWriters)
{
    const std::string dir = freshDir("cache_concurrent");
    CacheStore store(dir);

    // Pre-seed half the keys; threads hammer fetch+store on all of
    // them.  Success = no crash/throw and every payload stays exact.
    const auto payloadFor = [](unsigned long long i) {
        return "payload-" + std::to_string(i);
    };
    for (unsigned long long i = 0; i < 8; ++i) {
        store.store(makeKey(i), payloadFor(i));
    }

    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&, t]() {
            for (int round = 0; round < 50; ++round) {
                const unsigned long long i =
                    static_cast<unsigned long long>((t * 50 + round) % 16);
                if (std::optional<std::string> got =
                        store.fetch(makeKey(i))) {
                    EXPECT_EQ(*got, payloadFor(i));
                } else {
                    store.store(makeKey(i), payloadFor(i));
                }
            }
        });
    }
    for (std::thread &thread : threads) {
        thread.join();
    }
    for (unsigned long long i = 0; i < 16; ++i) {
        EXPECT_EQ(*store.fetch(makeKey(i)), payloadFor(i));
    }
}

TEST(CacheStore, TwoStoresOneDirectory)
{
    // Two Service processes can point at one cache directory; writes
    // go through atomic rename, so each store sees either nothing or
    // a complete entry — never a torn one.
    const std::string dir = freshDir("cache_shared");
    CacheStore a(dir);
    CacheStore b(dir);

    a.store(makeKey(1), "from-a");
    EXPECT_EQ(*b.fetch(makeKey(1)), "from-a");

    b.store(makeKey(2), "from-b");
    EXPECT_EQ(*a.fetch(makeKey(2)), "from-b");
}

TEST(CacheStore, EvictionRescansDirectoryForForeignWrites)
{
    // Two stores share a directory; B opened while it was empty, so
    // its byte count is stale once A fills the directory.  B's next
    // store() must rescan before evicting — with the stale count the
    // directory would quietly outgrow the budget.
    const std::string dir = freshDir("cache_cross_evict");
    const unsigned long long budget = 4 * 700;
    const std::string payload(400, 'p');

    CacheStore a(dir, budget);
    CacheStore b(dir, budget); // opens empty: indexed bytes = 0

    for (unsigned long long i = 0; i < 4; ++i) {
        a.store(makeKey(i), payload);
    }
    ASSERT_EQ(a.stats().evictions, 0u);

    // B still believes the directory holds nothing but what it wrote.
    b.store(makeKey(100), payload);
    b.store(makeKey(101), payload);
    EXPECT_GT(b.stats().evictions, 0u)
        << "stale index: foreign entries invisible to eviction";

    unsigned long long on_disk = 0;
    for (const auto &item : fs::directory_iterator(dir)) {
        on_disk += static_cast<unsigned long long>(item.file_size());
    }
    EXPECT_LE(on_disk, budget)
        << "directory outgrew the budget despite eviction";

    // B's own freshest entries survive (they hold the top ticks).
    EXPECT_TRUE(b.fetch(makeKey(101)).has_value());
}

TEST(CacheStore, SweepServedFromStoreMatchesColdRun)
{
    // Engine integration: run a small sweep cold, then again with a
    // fresh in-memory cache but the same store — every point must
    // come from the store and match bit for bit.
    SweepSpec spec;
    spec.name = "store-test";
    spec.seed = 7;
    CircuitSpec qft;
    qft.bench = "qft";
    qft.widths = {4};
    CircuitSpec ghz;
    ghz.bench = "ghz";
    ghz.widths = {4};
    spec.circuits = {qft, ghz};
    TargetSpec target;
    target.target = "corral11-16-sqiswap";
    spec.targets = {target};
    spec.pipelines = {"dense,stochastic-route=2,elide,basis=sqiswap"};

    const std::string dir = freshDir("cache_sweep");
    CacheStore store(dir);

    EngineOptions options;
    options.threads = 1;
    options.cache_store = &store;

    const SweepRun cold = runSweep(spec, options);
    EXPECT_EQ(cold.stats.from_store, 0u);
    EXPECT_EQ(cold.stats.computed, cold.points.size());

    const SweepRun warm = runSweep(spec, options);
    EXPECT_EQ(warm.stats.computed, 0u);
    EXPECT_EQ(warm.stats.from_store, warm.points.size());

    ASSERT_EQ(cold.metrics.size(), warm.metrics.size());
    for (std::size_t i = 0; i < cold.metrics.size(); ++i) {
        EXPECT_EQ(cold.metrics[i].metrics.swaps_total,
                  warm.metrics[i].metrics.swaps_total);
        EXPECT_EQ(cold.metrics[i].metrics.basis_2q_total,
                  warm.metrics[i].metrics.basis_2q_total);
        EXPECT_EQ(cold.metrics[i].metrics.duration_total,
                  warm.metrics[i].metrics.duration_total);
        EXPECT_EQ(cold.metrics[i].metrics.duration_critical,
                  warm.metrics[i].metrics.duration_critical);
    }
}

} // namespace
} // namespace snail
