/**
 * @file
 * Tests for the OpenQASM 2.0 lexer and parser.
 *
 * Coverage: tokenization edge cases, the statement grammar, parameter
 * expression evaluation, qelib1 expansion, register broadcasting,
 * error diagnostics, and export -> import round trips checked by
 * statevector equivalence.
 */

#include <cmath>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "locale_guard.hpp"

#include "circuits/circuits.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "ir/qasm.hpp"
#include "ir/qasm_lexer.hpp"
#include "ir/qasm_parser.hpp"
#include "sim/equivalence.hpp"

namespace snail
{
namespace
{

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

TEST(QasmLexer, TokenizesPunctuation)
{
    QasmLexer lexer("( ) [ ] { } ; , -> == + - * / ^");
    auto tokens = lexer.tokenizeAll();
    std::vector<QasmTokenKind> kinds;
    for (const auto &tok : tokens) {
        kinds.push_back(tok.kind);
    }
    std::vector<QasmTokenKind> expected = {
        QasmTokenKind::LParen,    QasmTokenKind::RParen,
        QasmTokenKind::LBracket,  QasmTokenKind::RBracket,
        QasmTokenKind::LBrace,    QasmTokenKind::RBrace,
        QasmTokenKind::Semicolon, QasmTokenKind::Comma,
        QasmTokenKind::Arrow,     QasmTokenKind::EqualEqual,
        QasmTokenKind::Plus,      QasmTokenKind::Minus,
        QasmTokenKind::Star,      QasmTokenKind::Slash,
        QasmTokenKind::Caret,     QasmTokenKind::EndOfFile,
    };
    EXPECT_EQ(kinds, expected);
}

TEST(QasmLexer, DistinguishesIntegerAndReal)
{
    QasmLexer lexer("42 3.5 0.25 1e3 2E-2 7.");
    auto t0 = lexer.next();
    EXPECT_EQ(t0.kind, QasmTokenKind::Integer);
    EXPECT_EQ(t0.int_value, 42);
    auto t1 = lexer.next();
    EXPECT_EQ(t1.kind, QasmTokenKind::Real);
    EXPECT_DOUBLE_EQ(t1.real_value, 3.5);
    auto t2 = lexer.next();
    EXPECT_DOUBLE_EQ(t2.real_value, 0.25);
    auto t3 = lexer.next();
    EXPECT_EQ(t3.kind, QasmTokenKind::Real);
    EXPECT_DOUBLE_EQ(t3.real_value, 1000.0);
    auto t4 = lexer.next();
    EXPECT_EQ(t4.kind, QasmTokenKind::Real);
    EXPECT_DOUBLE_EQ(t4.real_value, 0.02);
    auto t5 = lexer.next();
    EXPECT_EQ(t5.kind, QasmTokenKind::Real);
    EXPECT_DOUBLE_EQ(t5.real_value, 7.0);
}

TEST(QasmLexer, IntegerFollowedByIdentifierStartingWithE)
{
    // "2 exp" must not fuse into a malformed exponent literal.
    QasmLexer lexer("2 exp");
    auto t0 = lexer.next();
    EXPECT_EQ(t0.kind, QasmTokenKind::Integer);
    auto t1 = lexer.next();
    EXPECT_EQ(t1.kind, QasmTokenKind::Identifier);
    EXPECT_EQ(t1.text, "exp");
}

TEST(QasmLexer, SkipsLineAndBlockComments)
{
    QasmLexer lexer("a // comment\n /* block\n comment */ b");
    EXPECT_EQ(lexer.next().text, "a");
    EXPECT_EQ(lexer.next().text, "b");
    EXPECT_EQ(lexer.next().kind, QasmTokenKind::EndOfFile);
}

TEST(QasmLexer, TracksLineNumbers)
{
    QasmLexer lexer("a\nb\n  c");
    EXPECT_EQ(lexer.next().line, 1);
    EXPECT_EQ(lexer.next().line, 2);
    auto c = lexer.next();
    EXPECT_EQ(c.line, 3);
    EXPECT_EQ(c.column, 3);
}

TEST(QasmLexer, StringLiteral)
{
    QasmLexer lexer("include \"qelib1.inc\";");
    EXPECT_EQ(lexer.next().text, "include");
    auto str = lexer.next();
    EXPECT_EQ(str.kind, QasmTokenKind::String);
    EXPECT_EQ(str.text, "qelib1.inc");
}

TEST(QasmLexer, RejectsUnterminatedString)
{
    QasmLexer lexer("include \"oops");
    lexer.next();
    EXPECT_THROW(lexer.next(), SnailError);
}

TEST(QasmLexer, RejectsUnterminatedBlockComment)
{
    QasmLexer lexer("/* never closed");
    EXPECT_THROW(lexer.next(), SnailError);
}

TEST(QasmLexer, RejectsStrayCharacters)
{
    QasmLexer lexer("@");
    EXPECT_THROW(lexer.next(), SnailError);
}

TEST(QasmLexer, PeekDoesNotConsume)
{
    QasmLexer lexer("x y");
    EXPECT_EQ(lexer.peek().text, "x");
    EXPECT_EQ(lexer.peek().text, "x");
    EXPECT_EQ(lexer.next().text, "x");
    EXPECT_EQ(lexer.next().text, "y");
}

TEST(QasmLexer, RealLiteralsIgnoreCommaDecimalLocale)
{
    // Regression: real literals used to go through std::strtod, which
    // honors LC_NUMERIC — under a comma-decimal locale "rz(0.5)"
    // silently parsed as rz(0).  std::from_chars is locale-free.
    CommaDecimalLocale locale;
    if (!locale.valid()) {
        GTEST_SKIP() << "no comma-decimal locale installed on this host";
    }
    QasmLexer lexer("3.5 0.25 1e-3");
    EXPECT_DOUBLE_EQ(lexer.next().real_value, 3.5);
    EXPECT_DOUBLE_EQ(lexer.next().real_value, 0.25);
    EXPECT_DOUBLE_EQ(lexer.next().real_value, 0.001);

    const Circuit c = parseQasm("OPENQASM 2.0;\nqreg q[1];\nrz(0.5) q[0];")
                          .circuit;
    ASSERT_EQ(c.size(), 1u);
    EXPECT_DOUBLE_EQ(c.instructions()[0].gate().params()[0], 0.5);
}

TEST(QasmLexer, RejectsNonQasmNumericForms)
{
    // Hex never fuses into one numeric token: "0x1A" is the integer 0
    // followed by the identifier "x1A" (the parser then rejects it as
    // a stray identifier where an expression operator was expected).
    QasmLexer hex_lexer("0x1A");
    auto t0 = hex_lexer.next();
    EXPECT_EQ(t0.kind, QasmTokenKind::Integer);
    EXPECT_EQ(t0.int_value, 0);
    EXPECT_EQ(hex_lexer.next().text, "x1A");

    // "inf"/"nan" are plain identifiers, not numbers.
    QasmLexer inf_lexer("inf");
    EXPECT_EQ(inf_lexer.next().kind, QasmTokenKind::Identifier);

    // A lone '.' is not a literal (strtod used to yield a silent 0.0).
    QasmLexer dot_lexer(". ;");
    EXPECT_THROW(dot_lexer.next(), SnailError);

    // ".5" with a fraction is fine.
    QasmLexer frac_lexer(".5");
    auto frac = frac_lexer.next();
    EXPECT_EQ(frac.kind, QasmTokenKind::Real);
    EXPECT_DOUBLE_EQ(frac.real_value, 0.5);

    // Out-of-range integers fail loudly instead of saturating.
    QasmLexer big_lexer("99999999999999999999999");
    EXPECT_THROW(big_lexer.next(), SnailError);

    // At the statement level both forms are parse errors.
    EXPECT_THROW(parseQasm("OPENQASM 2.0;\nqreg q[1];\nrz(0x2) q[0];"),
                 SnailError);
    EXPECT_THROW(parseQasm("OPENQASM 2.0;\nqreg q[1];\nrz(inf) q[0];"),
                 SnailError);
}

// ---------------------------------------------------------------------
// Parser: structure
// ---------------------------------------------------------------------

const char *kPrelude = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";

Circuit
parseBody(const std::string &body)
{
    return parseQasm(std::string(kPrelude) + body).circuit;
}

TEST(QasmParser, EmptyProgram)
{
    auto result = parseQasm("OPENQASM 2.0;");
    EXPECT_EQ(result.circuit.numQubits(), 0);
    EXPECT_TRUE(result.circuit.empty());
}

TEST(QasmParser, HeaderIsOptional)
{
    auto result = parseQasm("qreg q[2];");
    EXPECT_EQ(result.circuit.numQubits(), 2);
}

TEST(QasmParser, RejectsQasm3)
{
    EXPECT_THROW(parseQasm("OPENQASM 3.0;"), SnailError);
}

TEST(QasmParser, MultipleQregsGetFlatOffsets)
{
    auto result = parseQasm("qreg a[2]; qreg b[3]; creg c[2];");
    ASSERT_EQ(result.qregs.size(), 2u);
    EXPECT_EQ(result.qregs[0].offset, 0);
    EXPECT_EQ(result.qregs[1].offset, 2);
    EXPECT_EQ(result.circuit.numQubits(), 5);
    ASSERT_EQ(result.cregs.size(), 1u);
    EXPECT_EQ(result.cregs[0].size, 2);
}

TEST(QasmParser, RejectsDuplicateRegister)
{
    EXPECT_THROW(parseQasm("qreg q[2]; qreg q[3];"), SnailError);
    EXPECT_THROW(parseQasm("qreg q[2]; creg q[3];"), SnailError);
}

TEST(QasmParser, RejectsZeroSizeRegister)
{
    EXPECT_THROW(parseQasm("qreg q[0];"), SnailError);
}

TEST(QasmParser, SimpleGates)
{
    Circuit c = parseBody("qreg q[2]; h q[0]; cx q[0], q[1];");
    ASSERT_EQ(c.size(), 2u);
    EXPECT_EQ(c.instructions()[0].gate().kind(), GateKind::H);
    EXPECT_EQ(c.instructions()[1].gate().kind(), GateKind::CX);
    EXPECT_EQ(c.instructions()[1].q0(), 0);
    EXPECT_EQ(c.instructions()[1].q1(), 1);
}

TEST(QasmParser, BuiltinUAndCXWorkWithoutInclude)
{
    auto result = parseQasm(
        "qreg q[2]; U(0.1, 0.2, 0.3) q[0]; CX q[0], q[1];");
    ASSERT_EQ(result.circuit.size(), 2u);
    EXPECT_EQ(result.circuit.instructions()[0].gate().kind(), GateKind::U3);
    EXPECT_EQ(result.circuit.instructions()[1].gate().kind(), GateKind::CX);
}

TEST(QasmParser, UnknownGateWithoutIncludeFails)
{
    EXPECT_THROW(parseQasm("qreg q[1]; mystery q[0];"), SnailError);
}

TEST(QasmParser, RegisterBroadcast1Q)
{
    Circuit c = parseBody("qreg q[4]; h q;");
    EXPECT_EQ(c.size(), 4u);
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(c.instructions()[i].q0(), i);
    }
}

TEST(QasmParser, RegisterBroadcast2QFullFull)
{
    Circuit c = parseBody("qreg a[3]; qreg b[3]; cx a, b;");
    ASSERT_EQ(c.size(), 3u);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(c.instructions()[i].q0(), i);
        EXPECT_EQ(c.instructions()[i].q1(), 3 + i);
    }
}

TEST(QasmParser, RegisterBroadcastScalarAgainstRegister)
{
    Circuit c = parseBody("qreg a[1]; qreg b[3]; cx a[0], b;");
    ASSERT_EQ(c.size(), 3u);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(c.instructions()[i].q0(), 0);
        EXPECT_EQ(c.instructions()[i].q1(), 1 + i);
    }
}

TEST(QasmParser, BroadcastSizeMismatchFails)
{
    EXPECT_THROW(parseBody("qreg a[2]; qreg b[3]; cx a, b;"), SnailError);
}

TEST(QasmParser, DuplicateOperandFails)
{
    EXPECT_THROW(parseBody("qreg q[2]; cx q[0], q[0];"), SnailError);
}

TEST(QasmParser, IndexOutOfRangeFails)
{
    EXPECT_THROW(parseBody("qreg q[2]; h q[5];"), SnailError);
}

TEST(QasmParser, UnknownRegisterFails)
{
    EXPECT_THROW(parseBody("qreg q[2]; h r[0];"), SnailError);
}

TEST(QasmParser, MeasureRecordedNotEmitted)
{
    auto result = parseQasm(std::string(kPrelude) +
                            "qreg q[2]; creg c[2]; h q[0]; measure q -> c;");
    EXPECT_EQ(result.circuit.size(), 1u);
    ASSERT_EQ(result.measurements.size(), 2u);
    EXPECT_EQ(result.measurements[0], (std::pair<int, int>{0, 0}));
    EXPECT_EQ(result.measurements[1], (std::pair<int, int>{1, 1}));
}

TEST(QasmParser, MeasureSizeMismatchFails)
{
    EXPECT_THROW(parseQasm(std::string(kPrelude) +
                           "qreg q[2]; creg c[3]; measure q -> c;"),
                 SnailError);
}

TEST(QasmParser, BarriersCountedAndIgnored)
{
    auto result = parseQasm(std::string(kPrelude) +
                            "qreg q[3]; h q[0]; barrier q; h q[1]; "
                            "barrier q[0], q[2];");
    EXPECT_EQ(result.barriers, 2);
    EXPECT_EQ(result.circuit.size(), 2u);
}

TEST(QasmParser, ResetRejected)
{
    EXPECT_THROW(parseBody("qreg q[1]; reset q[0];"), SnailError);
}

TEST(QasmParser, IfRejected)
{
    EXPECT_THROW(parseQasm(std::string(kPrelude) +
                           "qreg q[1]; creg c[1]; if (c==1) x q[0];"),
                 SnailError);
}

TEST(QasmParser, NonQelibIncludeRejected)
{
    EXPECT_THROW(parseQasm("include \"other.inc\";"), SnailError);
}

// ---------------------------------------------------------------------
// Parser: expressions
// ---------------------------------------------------------------------

double
firstParamOf(const std::string &expr)
{
    Circuit c = parseBody("qreg q[1]; rz(" + expr + ") q[0];");
    return c.instructions()[0].gate().params()[0];
}

TEST(QasmParserExpr, Pi)
{
    EXPECT_DOUBLE_EQ(firstParamOf("pi"), M_PI);
}

TEST(QasmParserExpr, Arithmetic)
{
    EXPECT_DOUBLE_EQ(firstParamOf("1+2*3"), 7.0);
    EXPECT_DOUBLE_EQ(firstParamOf("(1+2)*3"), 9.0);
    EXPECT_DOUBLE_EQ(firstParamOf("7/2"), 3.5);
    EXPECT_DOUBLE_EQ(firstParamOf("2^3"), 8.0);
    EXPECT_DOUBLE_EQ(firstParamOf("-pi/2"), -M_PI / 2);
    EXPECT_DOUBLE_EQ(firstParamOf("1-2-3"), -4.0);
}

TEST(QasmParserExpr, PowerIsRightAssociative)
{
    EXPECT_DOUBLE_EQ(firstParamOf("2^3^2"), 512.0);
}

TEST(QasmParserExpr, UnaryMinusStacksAndBinds)
{
    EXPECT_DOUBLE_EQ(firstParamOf("--1"), 1.0);
    // Unary minus binds looser than '^': -2^2 = -(2^2).
    EXPECT_DOUBLE_EQ(firstParamOf("-2^2"), -4.0);
}

TEST(QasmParserExpr, Functions)
{
    EXPECT_DOUBLE_EQ(firstParamOf("sin(pi/2)"), 1.0);
    EXPECT_NEAR(firstParamOf("cos(0)"), 1.0, 1e-15);
    EXPECT_NEAR(firstParamOf("tan(pi/4)"), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(firstParamOf("exp(0)"), 1.0);
    EXPECT_DOUBLE_EQ(firstParamOf("ln(exp(1))"), 1.0);
    EXPECT_DOUBLE_EQ(firstParamOf("sqrt(16)"), 4.0);
}

TEST(QasmParserExpr, ErrorsAreDiagnosed)
{
    EXPECT_THROW(firstParamOf("1/0"), SnailError);
    EXPECT_THROW(firstParamOf("ln(0)"), SnailError);
    EXPECT_THROW(firstParamOf("sqrt(-1)"), SnailError);
    EXPECT_THROW(firstParamOf("frob(1)"), SnailError);
    EXPECT_THROW(firstParamOf("undefined_name"), SnailError);
    EXPECT_THROW(firstParamOf("1+"), SnailError);
}

// ---------------------------------------------------------------------
// Parser: gate definitions and qelib1 expansion
// ---------------------------------------------------------------------

TEST(QasmParserGateDef, CustomGateExpands)
{
    Circuit c = parseBody("qreg q[2];\n"
                          "gate bell a, b { h a; cx a, b; }\n"
                          "bell q[0], q[1];");
    ASSERT_EQ(c.size(), 2u);
    EXPECT_EQ(c.instructions()[0].gate().kind(), GateKind::H);
    EXPECT_EQ(c.instructions()[1].gate().kind(), GateKind::CX);
}

TEST(QasmParserGateDef, ParameterizedGateEvaluatesExpressions)
{
    Circuit c = parseBody("qreg q[1];\n"
                          "gate tilt(theta) a { rz(theta/2) a; "
                          "rx(-theta) a; }\n"
                          "tilt(pi) q[0];");
    ASSERT_EQ(c.size(), 2u);
    EXPECT_DOUBLE_EQ(c.instructions()[0].gate().params()[0], M_PI / 2);
    EXPECT_DOUBLE_EQ(c.instructions()[1].gate().params()[0], -M_PI);
}

TEST(QasmParserGateDef, NestedDefinitionsExpand)
{
    Circuit c = parseBody("qreg q[2];\n"
                          "gate inner a { h a; }\n"
                          "gate outer a, b { inner a; cx a, b; inner b; }\n"
                          "outer q[0], q[1];");
    ASSERT_EQ(c.size(), 3u);
    EXPECT_EQ(c.countKind(GateKind::H), 2u);
    EXPECT_EQ(c.countKind(GateKind::CX), 1u);
}

TEST(QasmParserGateDef, UserDefinitionOverridesNativeName)
{
    // Without qelib1, a user may define their own 'h'; it must be used.
    auto result = parseQasm("qreg q[1];\n"
                            "gate h a { U(0,0,pi) a; }\n"
                            "h q[0];");
    ASSERT_EQ(result.circuit.size(), 1u);
    EXPECT_EQ(result.circuit.instructions()[0].gate().kind(), GateKind::U3);
}

TEST(QasmParserGateDef, RedefinitionFails)
{
    EXPECT_THROW(parseBody("gate foo a { h a; }\ngate foo a { x a; }"),
                 SnailError);
}

TEST(QasmParserGateDef, UnknownBodyArgumentFails)
{
    EXPECT_THROW(parseBody("gate foo a { h b; }"), SnailError);
}

TEST(QasmParserGateDef, OpaqueDeclarationParsesButCannotApply)
{
    EXPECT_THROW(parseBody("qreg q[1]; opaque magic a; magic q[0];"),
                 SnailError);
}

TEST(QasmParserGateDef, ArityMismatchFails)
{
    EXPECT_THROW(parseBody("qreg q[2]; gate foo a { h a; } foo q[0], q[1];"),
                 SnailError);
    EXPECT_THROW(parseBody("qreg q[1]; rz q[0];"), SnailError);
    EXPECT_THROW(parseBody("qreg q[1]; rz(1,2) q[0];"), SnailError);
}

TEST(QasmParserGateDef, BarrierInsideBodyIgnored)
{
    Circuit c = parseBody("qreg q[1];\n"
                          "gate foo a { h a; barrier a; h a; }\n"
                          "foo q[0];");
    EXPECT_EQ(c.size(), 2u);
}

TEST(QasmParserQelib, CcxExpandsToNativeSet)
{
    Circuit c = parseBody("qreg q[3]; ccx q[0], q[1], q[2];");
    EXPECT_GT(c.size(), 10u);
    EXPECT_EQ(c.countKind(GateKind::CX), 6u);
    // Expansion must stay within the native 1Q/2Q instruction set.
    for (const auto &op : c.instructions()) {
        EXPECT_LE(op.numQubits(), 2);
    }
}

TEST(QasmParserQelib, CcxMatchesToffoliUnitary)
{
    Circuit parsed = parseBody("qreg q[3]; ccx q[0], q[1], q[2];");
    Circuit reference(3);
    reference.ccxDecomposed(0, 1, 2);
    EXPECT_TRUE(circuitsEquivalent(parsed, reference));
}

TEST(QasmParserQelib, ControlledRotationsMatchDefinitions)
{
    // crz via qelib1 body vs the same circuit written out natively.
    Circuit parsed = parseBody("qreg q[2]; crz(0.7) q[0], q[1];");
    Circuit reference(2);
    reference.rz(0.35, 1);
    reference.cx(0, 1);
    reference.rz(-0.35, 1);
    reference.cx(0, 1);
    EXPECT_TRUE(circuitsEquivalent(parsed, reference));
}

TEST(QasmParserQelib, NativeInterceptionKeepsCountsMeaningful)
{
    // 'h' must become one H instruction, not the u2 definition body.
    Circuit c = parseBody("qreg q[1]; h q[0];");
    ASSERT_EQ(c.size(), 1u);
    EXPECT_EQ(c.instructions()[0].gate().kind(), GateKind::H);
}

TEST(QasmParserQelib, SwapAndIswapAreNative)
{
    Circuit c = parseBody("qreg q[2]; swap q[0], q[1]; iswap q[0], q[1];");
    ASSERT_EQ(c.size(), 2u);
    EXPECT_EQ(c.instructions()[0].gate().kind(), GateKind::Swap);
    EXPECT_EQ(c.instructions()[1].gate().kind(), GateKind::ISwap);
}

TEST(QasmParserQelib, U2MapsToU3)
{
    Circuit via_u2 = parseBody("qreg q[1]; u2(0.3, 0.9) q[0];");
    Circuit via_u3(1);
    via_u3.u3(M_PI / 2, 0.3, 0.9, 0);
    EXPECT_TRUE(circuitsEquivalent(via_u2, via_u3));
}

TEST(QasmParserQelib, CswapMatchesFredkin)
{
    Circuit parsed = parseBody("qreg q[3]; cswap q[0], q[1], q[2];");
    // Fredkin reference: cx c,b ; ccx a,b,c ; cx c,b.
    Circuit reference(3);
    reference.cx(2, 1);
    reference.ccxDecomposed(0, 1, 2);
    reference.cx(2, 1);
    EXPECT_TRUE(circuitsEquivalent(parsed, reference));
}

// ---------------------------------------------------------------------
// Round trips: export -> parse -> equivalence
// ---------------------------------------------------------------------

class QasmRoundTrip : public ::testing::TestWithParam<const char *>
{
};

Circuit
makeNamedCircuit(const std::string &which)
{
    if (which == "qft") {
        return qft(4);
    }
    if (which == "ghz") {
        return ghz(5);
    }
    if (which == "qaoa") {
        return qaoaVanilla(4);
    }
    if (which == "tim") {
        return timHamiltonian(4);
    }
    if (which == "adder") {
        return cdkmAdder(6);
    }
    SNAIL_THROW("unknown circuit " << which);
}

TEST_P(QasmRoundTrip, ExportParsePreservesUnitary)
{
    Circuit original = makeNamedCircuit(GetParam());
    ASSERT_TRUE(isQasmExportable(original));
    QasmParseResult reparsed = parseQasm(toQasm(original));
    EXPECT_EQ(reparsed.circuit.numQubits(), original.numQubits());
    EXPECT_EQ(reparsed.circuit.size(), original.size());
    EXPECT_TRUE(circuitsEquivalent(original, reparsed.circuit));
}

TEST_P(QasmRoundTrip, ExportParsePreservesGateCounts)
{
    Circuit original = makeNamedCircuit(GetParam());
    QasmParseResult reparsed = parseQasm(toQasm(original));
    EXPECT_EQ(reparsed.circuit.countTwoQubit(), original.countTwoQubit());
    EXPECT_EQ(reparsed.circuit.countKind(GateKind::CX),
              original.countKind(GateKind::CX));
    EXPECT_EQ(reparsed.circuit.countKind(GateKind::CPhase),
              original.countKind(GateKind::CPhase));
    EXPECT_EQ(reparsed.circuit.countKind(GateKind::Swap),
              original.countKind(GateKind::Swap));
}

INSTANTIATE_TEST_SUITE_P(Circuits, QasmRoundTrip,
                         ::testing::Values("qft", "ghz", "qaoa", "tim",
                                           "adder"));

/** Randomized round trips over the full QASM-expressible gate set. */
class QasmFuzzRoundTrip : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(QasmFuzzRoundTrip, RandomCircuitSurvives)
{
    Rng rng(GetParam());
    const int n = 2 + static_cast<int>(rng.index(4));
    Circuit c(n, "fuzz");
    const int length = 20 + static_cast<int>(rng.index(30));
    for (int i = 0; i < length; ++i) {
        const int q = static_cast<int>(rng.index(n));
        int r = static_cast<int>(rng.index(n));
        while (r == q) {
            r = static_cast<int>(rng.index(n));
        }
        switch (rng.index(12)) {
          case 0:
            c.h(q);
            break;
          case 1:
            c.x(q);
            break;
          case 2:
            c.sdg(q);
            break;
          case 3:
            c.t(q);
            break;
          case 4:
            c.sx(q);
            break;
          case 5:
            c.rx(rng.uniform(-7.0, 7.0), q);
            break;
          case 6:
            c.u3(rng.uniform(0.0, M_PI), rng.uniform(-M_PI, M_PI),
                 rng.uniform(-M_PI, M_PI), q);
            break;
          case 7:
            c.cx(q, r);
            break;
          case 8:
            c.cz(q, r);
            break;
          case 9:
            c.cp(rng.uniform(-M_PI, M_PI), q, r);
            break;
          case 10:
            c.rzz(rng.uniform(-M_PI, M_PI), q, r);
            break;
          default:
            c.swap(q, r);
            break;
        }
    }
    ASSERT_TRUE(isQasmExportable(c));
    const QasmParseResult back = parseQasm(toQasm(c));
    ASSERT_EQ(back.circuit.size(), c.size());
    EXPECT_TRUE(circuitsEquivalent(c, back.circuit));
    // Gate kinds survive exactly, instruction by instruction.
    for (std::size_t i = 0; i < c.size(); ++i) {
        EXPECT_EQ(back.circuit.instructions()[i].gate().kind(),
                  c.instructions()[i].gate().kind());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QasmFuzzRoundTrip,
                         ::testing::Range(100u, 116u));

TEST(QasmParserFile, MissingFileFails)
{
    EXPECT_THROW(parseQasmFile("/nonexistent/path.qasm"), SnailError);
}

TEST(QasmParserFile, WriteAndReadBack)
{
    Circuit original = ghz(3);
    std::string path = ::testing::TempDir() + "/snail_ghz.qasm";
    {
        std::ofstream out(path);
        out << toQasm(original);
    }
    QasmParseResult result = parseQasmFile(path);
    EXPECT_TRUE(circuitsEquivalent(original, result.circuit));
}

} // namespace
} // namespace snail
