/**
 * @file
 * Unit tests for the benchmark generators: structural gate counts,
 * functional correctness by simulation (QFT, GHZ, adder), determinism,
 * and registry behaviour.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuits/circuits.hpp"
#include "circuits/registry.hpp"
#include "common/error.hpp"
#include "sim/statevector.hpp"

namespace snail
{
namespace
{

TEST(QuantumVolume, LayerAndGateCounts)
{
    const Circuit c = quantumVolume(6, 6, 3);
    // 6 layers x 3 pairs of SU(4) blocks.
    EXPECT_EQ(c.countTwoQubit(), 18u);
    EXPECT_EQ(c.countKind(GateKind::Unitary4), 18u);
}

TEST(QuantumVolume, OddWidthLeavesOneIdlePerLayer)
{
    const Circuit c = quantumVolume(5, 5, 3);
    EXPECT_EQ(c.countTwoQubit(), 10u); // floor(5/2) = 2 pairs x 5 layers
}

TEST(QuantumVolume, DeterministicBySeed)
{
    const Circuit a = quantumVolume(4, 4, 9);
    const Circuit b = quantumVolume(4, 4, 9);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.instructions()[i].qubits(), b.instructions()[i].qubits());
    }
}

TEST(Qft, GateCounts)
{
    const int n = 6;
    const Circuit c = qft(n);
    EXPECT_EQ(c.countKind(GateKind::H), static_cast<std::size_t>(n));
    EXPECT_EQ(c.countKind(GateKind::CPhase),
              static_cast<std::size_t>(n * (n - 1) / 2));
    EXPECT_EQ(c.countKind(GateKind::Swap), static_cast<std::size_t>(n / 2));
}

TEST(Qft, TransformsBasisStateToFourierAmplitudes)
{
    // QFT|0> = uniform superposition with zero phases.
    const int n = 4;
    Statevector sv(n);
    sv.run(qft(n));
    const double expected = 1.0 / std::sqrt(16.0);
    for (const auto &amp : sv.amplitudes()) {
        EXPECT_NEAR(std::abs(amp), expected, 1e-10);
        EXPECT_NEAR(amp.imag(), 0.0, 1e-10);
    }

    // QFT|1> has amplitudes exp(2 pi i k / 16) / 4 (with our bit order,
    // |1> = q0 set, the least significant bit of the transform input).
    Statevector sv1(n, 1);
    sv1.run(qft(n));
    for (std::size_t k = 0; k < 16; ++k) {
        const Complex expect =
            std::polar(0.25, 2.0 * M_PI * static_cast<double>(k) / 16.0);
        EXPECT_NEAR(std::abs(sv1.amplitudes()[k] - expect), 0.0, 1e-9)
            << "k = " << k;
    }
}

TEST(Qaoa, StructureMatchesSkModel)
{
    const int n = 6;
    const Circuit c = qaoaVanilla(n, 3);
    EXPECT_EQ(c.countKind(GateKind::RZZ),
              static_cast<std::size_t>(n * (n - 1) / 2));
    EXPECT_EQ(c.countKind(GateKind::H), static_cast<std::size_t>(n));
    EXPECT_EQ(c.countKind(GateKind::RX), static_cast<std::size_t>(n));
}

TEST(Tim, ChainStructure)
{
    const int n = 8;
    const Circuit c = timHamiltonian(n, 2);
    EXPECT_EQ(c.countKind(GateKind::RZZ),
              static_cast<std::size_t>(2 * (n - 1)));
    // Every ZZ acts on chain neighbors.
    for (const auto &op : c.instructions()) {
        if (op.gate().kind() == GateKind::RZZ) {
            EXPECT_EQ(std::abs(op.q0() - op.q1()), 1);
        }
    }
}

TEST(Adder, AddsCorrectly)
{
    // 8 qubits: m = 3 bits per register.  Build the adder without random
    // preparation by driving the registers ourselves.
    const int n = 8;
    const int m = 3;
    for (int a_val : {0, 3, 5}) {
        for (int b_val : {0, 2, 7}) {
            Circuit c(n, "adder-test");
            for (int i = 0; i < m; ++i) {
                if ((a_val >> i) & 1) {
                    c.x(1 + i);
                }
                if ((b_val >> i) & 1) {
                    c.x(1 + m + i);
                }
            }
            // Splice in the adder body (seed irrelevant: skip its random
            // preparation by building on a fresh circuit and dropping X
            // gates up front).
            const Circuit full = cdkmAdder(n, 1);
            bool past_prep = false;
            for (const auto &op : full.instructions()) {
                if (!past_prep && op.gate().kind() == GateKind::X) {
                    continue; // skip the random input preparation
                }
                past_prep = true;
                c.append(op);
            }
            Statevector sv(n);
            sv.run(c);
            // Find the dominant basis state.
            std::size_t best = 0;
            double best_mag = 0.0;
            for (std::size_t i = 0; i < sv.amplitudes().size(); ++i) {
                if (std::abs(sv.amplitudes()[i]) > best_mag) {
                    best_mag = std::abs(sv.amplitudes()[i]);
                    best = i;
                }
            }
            EXPECT_NEAR(best_mag, 1.0, 1e-9);
            // CDKM: b <- a + b, a unchanged, cout = carry.
            const int a_out = static_cast<int>((best >> 1) & 0x7);
            const int b_out = static_cast<int>((best >> 4) & 0x7);
            const int cout = static_cast<int>((best >> 7) & 0x1);
            EXPECT_EQ(a_out, a_val);
            EXPECT_EQ(b_out, (a_val + b_val) & 0x7);
            EXPECT_EQ(cout, (a_val + b_val) >> 3);
        }
    }
}

TEST(Ghz, PreparesGhzState)
{
    const int n = 5;
    Statevector sv(n);
    sv.run(ghz(n));
    const double r = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(std::abs(sv.amplitudes()[0]), r, 1e-10);
    EXPECT_NEAR(std::abs(sv.amplitudes()[(1u << n) - 1]), r, 1e-10);
    double other = 0.0;
    for (std::size_t i = 1; i + 1 < sv.amplitudes().size(); ++i) {
        other += std::norm(sv.amplitudes()[i]);
    }
    EXPECT_NEAR(other, 0.0, 1e-12);
}

TEST(Registry, NamesRoundTrip)
{
    for (BenchmarkKind kind : allBenchmarks()) {
        const Circuit c = makeBenchmark(benchmarkName(kind), 6, 3);
        EXPECT_EQ(c.numQubits(), 6);
        EXPECT_GT(c.size(), 0u);
    }
    EXPECT_THROW(makeBenchmark("nope", 6), SnailError);
}

TEST(Registry, WidthSweepsScale)
{
    // Every benchmark must scale its 2Q count with width.
    for (BenchmarkKind kind : allBenchmarks()) {
        const std::size_t small = makeBenchmark(kind, 6, 3).countTwoQubit();
        const std::size_t large = makeBenchmark(kind, 12, 3).countTwoQubit();
        EXPECT_GT(large, small) << benchmarkName(kind);
    }
}

} // namespace
} // namespace snail
