/**
 * @file
 * Unit tests for the linear-algebra substrate: matrix algebra, the Jacobi
 * and joint eigensolvers, Haar sampling, ZYZ extraction, and Kronecker
 * factorization.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <type_traits>
#include <utility>

#include "common/rng.hpp"
#include "gates/gate.hpp"
#include "linalg/eigen.hpp"
#include "linalg/kron_factor.hpp"
#include "linalg/matrix.hpp"
#include "linalg/random_unitary.hpp"
#include "linalg/su2.hpp"

namespace snail
{
namespace
{

TEST(Matrix, IdentityAndZero)
{
    const Matrix i3 = Matrix::identity(3);
    EXPECT_EQ(i3.rows(), 3u);
    EXPECT_EQ(i3(0, 0), Complex(1.0, 0.0));
    EXPECT_EQ(i3(0, 1), Complex(0.0, 0.0));
    const Matrix z = Matrix::zero(2, 4);
    EXPECT_EQ(z.rows(), 2u);
    EXPECT_EQ(z.cols(), 4u);
    EXPECT_DOUBLE_EQ(z.frobeniusNorm(), 0.0);
}

// Probe whether `.data()` is callable on a Matrix of reference kind M.
// Deleted overloads fail substitution, so the trait reads false for
// rvalues once the guard is in place.
template <typename M, typename = void>
struct DataCallable : std::false_type
{
};
template <typename M>
struct DataCallable<M, std::void_t<decltype(std::declval<M>().data())>>
    : std::true_type
{
};

TEST(Matrix, DataIsRvalueGuarded)
{
    // Lifetime footgun, documented by this test: Gate::matrix() returns
    // by value, and `for (auto &c : gate.matrix().data())` dangled —
    // range-for lifetime extension does not reach through `.data()` —
    // which once produced a garbage-values bug.  The rvalue-qualified
    // data() overloads are deleted, so the dangling pattern no longer
    // compiles:
    static_assert(!DataCallable<Matrix>::value,
                  "rvalue .data() must be deleted (dangles in range-for)");
    static_assert(!DataCallable<const Matrix>::value,
                  "const rvalue .data() must be deleted");
    static_assert(DataCallable<Matrix &>::value,
                  "lvalue .data() must stay usable");
    static_assert(DataCallable<const Matrix &>::value,
                  "const lvalue .data() must stay usable");

    // The safe pattern: materialize the Matrix into a named local, then
    // iterate its storage.
    const Matrix m = gates::h().matrix();
    double norm = 0.0;
    for (const auto &cell : m.data()) {
        norm += std::norm(cell);
    }
    EXPECT_NEAR(norm, 2.0, 1e-12); // H has four entries of |1/sqrt(2)|^2
}

TEST(Matrix, ProductAgainstHandComputed)
{
    const Matrix a{{1, 2}, {3, 4}};
    const Matrix b{{5, 6}, {7, 8}};
    const Matrix c = a * b;
    EXPECT_EQ(c(0, 0), Complex(19.0, 0.0));
    EXPECT_EQ(c(0, 1), Complex(22.0, 0.0));
    EXPECT_EQ(c(1, 0), Complex(43.0, 0.0));
    EXPECT_EQ(c(1, 1), Complex(50.0, 0.0));
}

TEST(Matrix, DaggerConjugatesAndTransposes)
{
    const Matrix a{{Complex(1, 2), Complex(3, 4)},
                   {Complex(5, 6), Complex(7, 8)}};
    const Matrix d = a.dagger();
    EXPECT_EQ(d(0, 1), Complex(5, -6));
    EXPECT_EQ(d(1, 0), Complex(3, -4));
}

TEST(Matrix, TraceAndDeterminant)
{
    const Matrix a{{2, 1}, {1, 3}};
    EXPECT_EQ(a.trace(), Complex(5.0, 0.0));
    EXPECT_NEAR(std::abs(a.determinant() - Complex(5.0, 0.0)), 0.0, 1e-12);

    // Singular matrix.
    const Matrix s{{1, 2}, {2, 4}};
    EXPECT_NEAR(std::abs(s.determinant()), 0.0, 1e-12);
}

TEST(Matrix, DeterminantOfUnitaryIsUnimodular)
{
    Rng rng(1);
    for (int i = 0; i < 20; ++i) {
        const Matrix u = haarUnitary(4, rng);
        EXPECT_NEAR(std::abs(u.determinant()), 1.0, 1e-9);
    }
}

TEST(Matrix, KronBlockStructure)
{
    const Matrix a{{1, 2}, {3, 4}};
    const Matrix b{{0, 1}, {1, 0}};
    const Matrix k = kron(a, b);
    EXPECT_EQ(k.rows(), 4u);
    EXPECT_EQ(k(0, 1), Complex(1.0, 0.0));  // a00 * b01
    EXPECT_EQ(k(0, 3), Complex(2.0, 0.0));  // a01 * b01
    EXPECT_EQ(k(3, 2), Complex(4.0, 0.0));  // a11 * b10
}

TEST(Matrix, KronMixedProductProperty)
{
    Rng rng(2);
    const Matrix a = haarUnitary(2, rng);
    const Matrix b = haarUnitary(2, rng);
    const Matrix c = haarUnitary(2, rng);
    const Matrix d = haarUnitary(2, rng);
    // (A x B)(C x D) == (AC) x (BD)
    EXPECT_TRUE(allClose(kron(a, b) * kron(c, d), kron(a * c, b * d), 1e-10));
}

TEST(Matrix, GlobalPhaseComparison)
{
    Rng rng(3);
    const Matrix u = haarUnitary(4, rng);
    const Matrix v = u * std::polar(1.0, 1.234);
    EXPECT_FALSE(allClose(u, v, 1e-9));
    EXPECT_TRUE(equalUpToGlobalPhase(u, v, 1e-9));
    EXPECT_NEAR(traceFidelity(u, v), 1.0, 1e-12);
}

TEST(Matrix, HsInnerMatchesTrace)
{
    Rng rng(4);
    const Matrix a = haarUnitary(3, rng);
    const Matrix b = haarUnitary(3, rng);
    const Complex lhs = hsInner(a, b);
    const Complex rhs = (a.dagger() * b).trace();
    EXPECT_NEAR(std::abs(lhs - rhs), 0.0, 1e-10);
}

TEST(Eigen, JacobiDiagonalizesKnownMatrix)
{
    RealMatrix a(2);
    a(0, 0) = 2.0;
    a(0, 1) = 1.0;
    a(1, 0) = 1.0;
    a(1, 1) = 2.0;
    const SymmetricEigen e = eigSymmetric(a);
    EXPECT_NEAR(e.values[0], 1.0, 1e-10);
    EXPECT_NEAR(e.values[1], 3.0, 1e-10);
}

TEST(Eigen, JacobiReconstructsRandomSymmetric)
{
    Rng rng(5);
    const std::size_t n = 4;
    RealMatrix a(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i; j < n; ++j) {
            const double v = rng.normal();
            a(i, j) = v;
            a(j, i) = v;
        }
    }
    const SymmetricEigen e = eigSymmetric(a);
    // Rebuild V diag(w) V^T.
    RealMatrix d(n);
    for (std::size_t i = 0; i < n; ++i) {
        d(i, i) = e.values[i];
    }
    const RealMatrix rebuilt = e.vectors * d * e.vectors.transpose();
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            EXPECT_NEAR(rebuilt(i, j), a(i, j), 1e-9);
        }
    }
}

TEST(Eigen, JointDiagonalizeCommutingPair)
{
    // Build commuting symmetric pair from a shared eigenbasis with a
    // deliberately degenerate spectrum in `a`.
    Rng rng(6);
    const std::size_t n = 4;
    RealMatrix g(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            g(i, j) = rng.normal();
        }
    }
    // Orthogonalize g's columns (Gram-Schmidt).
    for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t k = 0; k < j; ++k) {
            double dot = 0.0;
            for (std::size_t i = 0; i < n; ++i) {
                dot += g(i, k) * g(i, j);
            }
            for (std::size_t i = 0; i < n; ++i) {
                g(i, j) -= dot * g(i, k);
            }
        }
        double norm = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            norm += g(i, j) * g(i, j);
        }
        norm = std::sqrt(norm);
        for (std::size_t i = 0; i < n; ++i) {
            g(i, j) /= norm;
        }
    }
    const double wa[4] = {1.0, 1.0, 2.0, 2.0};  // degenerate pairs
    const double wb[4] = {3.0, 4.0, 5.0, 6.0};  // splits the degeneracy
    RealMatrix da(n);
    RealMatrix db(n);
    for (std::size_t i = 0; i < n; ++i) {
        da(i, i) = wa[i];
        db(i, i) = wb[i];
    }
    const RealMatrix a = g * da * g.transpose();
    const RealMatrix b = g * db * g.transpose();

    const RealMatrix p = jointDiagonalize(a, b);
    EXPECT_NEAR((p.transpose() * a * p).maxOffDiagonal(), 0.0, 1e-8);
    EXPECT_NEAR((p.transpose() * b * p).maxOffDiagonal(), 0.0, 1e-8);
    EXPECT_NEAR(std::abs(p.determinant()), 1.0, 1e-9);
    EXPECT_GT(p.determinant(), 0.0);
}

TEST(RandomUnitary, HaarIsUnitary)
{
    Rng rng(7);
    for (std::size_t n : {2, 3, 4}) {
        const Matrix u = haarUnitary(n, rng);
        EXPECT_TRUE(u.isUnitary(1e-9)) << "n = " << n;
    }
}

TEST(RandomUnitary, SpecialUnitaryHasUnitDeterminant)
{
    Rng rng(8);
    const Matrix u = haarSpecialUnitary(4, rng);
    EXPECT_TRUE(u.isUnitary(1e-9));
    EXPECT_NEAR(std::abs(u.determinant() - Complex(1.0, 0.0)), 0.0, 1e-8);
}

TEST(Su2, RotationMatricesAreUnitary)
{
    for (double angle : {-2.5, -0.3, 0.0, 0.7, 3.1}) {
        EXPECT_TRUE(rzMatrix(angle).isUnitary(1e-12));
        EXPECT_TRUE(ryMatrix(angle).isUnitary(1e-12));
        EXPECT_TRUE(rxMatrix(angle).isUnitary(1e-12));
    }
}

TEST(Su2, ZyzRoundTripsRandomUnitaries)
{
    Rng rng(9);
    for (int i = 0; i < 50; ++i) {
        const Matrix u = haarUnitary(2, rng);
        const ZyzAngles ang = zyzDecompose(u);
        EXPECT_TRUE(allClose(zyzMatrix(ang), u, 1e-9)) << "iteration " << i;
    }
}

TEST(Su2, ZyzHandlesDiagonalAndAntiDiagonal)
{
    // Diagonal: S gate.
    const Matrix s{{1, 0}, {0, Complex(0, 1)}};
    EXPECT_TRUE(allClose(zyzMatrix(zyzDecompose(s)), s, 1e-9));
    // Anti-diagonal: X gate.
    const Matrix x{{0, 1}, {1, 0}};
    EXPECT_TRUE(allClose(zyzMatrix(zyzDecompose(x)), x, 1e-9));
    // Y gate.
    const Matrix y{{0, Complex(0, -1)}, {Complex(0, 1), 0}};
    EXPECT_TRUE(allClose(zyzMatrix(zyzDecompose(y)), y, 1e-9));
}

TEST(Su2, U3MatchesZyzWithPhase)
{
    // U3(theta, phi, lam) = e^{i(phi+lam)/2} Rz(phi) Ry(theta) Rz(lam)
    const double theta = 0.7;
    const double phi = -1.1;
    const double lam = 2.3;
    const Matrix lhs = u3Matrix(theta, phi, lam);
    const Matrix rhs = (rzMatrix(phi) * ryMatrix(theta) * rzMatrix(lam)) *
                       std::polar(1.0, (phi + lam) / 2.0);
    EXPECT_TRUE(allClose(lhs, rhs, 1e-12));
}

TEST(KronFactor, RecoversExactTensorProducts)
{
    Rng rng(10);
    for (int i = 0; i < 50; ++i) {
        const Matrix a = haarUnitary(2, rng);
        const Matrix b = haarUnitary(2, rng);
        const KronFactors f = factorKronecker(kron(a, b));
        EXPECT_LT(f.residual, 1e-9) << "iteration " << i;
        EXPECT_TRUE(f.left.isUnitary(1e-8));
        EXPECT_TRUE(f.right.isUnitary(1e-8));
        // Factors equal the originals up to opposite phases.
        EXPECT_TRUE(equalUpToGlobalPhase(f.left, a, 1e-8));
        EXPECT_TRUE(equalUpToGlobalPhase(f.right, b, 1e-8));
    }
}

TEST(KronFactor, ReportsResidualForEntangledInput)
{
    // CNOT is not a tensor product; the residual must be large.
    const Matrix cnot{{1, 0, 0, 0},
                      {0, 1, 0, 0},
                      {0, 0, 0, 1},
                      {0, 0, 1, 0}};
    const KronFactors f = factorKronecker(cnot);
    EXPECT_GT(f.residual, 0.5);
}

} // namespace
} // namespace snail
