/**
 * @file
 * Tests for the heterogeneous (per-edge) basis-gate scoring.
 *
 * Invariants: a heterogeneous device whose edges all carry the fallback
 * basis must score exactly like the homogeneous translationStats; edge
 * assignments are orientation-independent; mixed assignments bound the
 * homogeneous extremes.
 */

#include <gtest/gtest.h>

#include "circuits/circuits.hpp"
#include "common/error.hpp"
#include "topology/registry.hpp"
#include "transpiler/hetero_basis.hpp"
#include "transpiler/pipeline.hpp"

namespace snail
{
namespace
{

/** A routed physical circuit on the given device. */
Circuit
routedCircuit(const CouplingGraph &device, int width)
{
    const Circuit c = quantumVolume(width, width, 7);
    TranspileOptions opts;
    opts.seed = 11;
    return transpile(c, device, opts).routed;
}

TEST(HeteroBasis, FallbackMatchesHomogeneous)
{
    const CouplingGraph device = namedTopology("square-16");
    const Circuit routed = routedCircuit(device, 8);
    for (BasisKind kind : {BasisKind::CNOT, BasisKind::SqISwap,
                           BasisKind::ISwap, BasisKind::Sycamore}) {
        const BasisSpec spec{kind};
        HeterogeneousBasis bases(device, spec);
        const TranslationStats hetero =
            heterogeneousTranslationStats(routed, bases);
        const TranslationStats homo = translationStats(routed, spec);
        EXPECT_EQ(hetero.total_2q, homo.total_2q);
        EXPECT_DOUBLE_EQ(hetero.critical_2q, homo.critical_2q);
        EXPECT_DOUBLE_EQ(hetero.total_duration, homo.total_duration);
        EXPECT_DOUBLE_EQ(hetero.critical_duration,
                         homo.critical_duration);
    }
}

TEST(HeteroBasis, AllEdgesAssignedMatchesHomogeneous)
{
    // Assigning CNOT explicitly on every edge over a SqISwap fallback
    // must equal the homogeneous CNOT result.
    const CouplingGraph device = namedTopology("tree-20");
    const Circuit routed = routedCircuit(device, 10);
    HeterogeneousBasis bases(device, BasisSpec{BasisKind::SqISwap});
    const std::size_t assigned = bases.setWhere(
        [](int, int) { return true; }, BasisSpec{BasisKind::CNOT});
    EXPECT_EQ(assigned, device.edgeCount());
    const TranslationStats hetero =
        heterogeneousTranslationStats(routed, bases);
    const TranslationStats homo =
        translationStats(routed, BasisSpec{BasisKind::CNOT});
    EXPECT_EQ(hetero.total_2q, homo.total_2q);
    EXPECT_DOUBLE_EQ(hetero.critical_duration, homo.critical_duration);
}

TEST(HeteroBasis, OrientationIndependent)
{
    const CouplingGraph device = namedTopology("square-16");
    HeterogeneousBasis bases(device, BasisSpec{BasisKind::SqISwap});
    const auto edge = device.edges().front();
    bases.setEdgeBasis(edge.second, edge.first,
                       BasisSpec{BasisKind::CNOT});
    EXPECT_EQ(bases.edgeBasis(edge.first, edge.second).kind,
              BasisKind::CNOT);
    EXPECT_EQ(bases.edgeBasis(edge.second, edge.first).kind,
              BasisKind::CNOT);
    EXPECT_EQ(bases.assignedEdges(), 1u);
}

TEST(HeteroBasis, RejectsNonEdges)
{
    const CouplingGraph device = namedTopology("square-16");
    HeterogeneousBasis bases(device, BasisSpec{BasisKind::SqISwap});
    // Find a non-adjacent pair.
    int a = 0, b = -1;
    for (int q = 1; q < device.numQubits(); ++q) {
        if (!device.hasEdge(0, q)) {
            b = q;
            break;
        }
    }
    ASSERT_GE(b, 0);
    EXPECT_THROW(bases.setEdgeBasis(a, b, BasisSpec{BasisKind::CNOT}),
                 SnailError);
}

TEST(HeteroBasis, MixedDurationBoundedByExtremes)
{
    const CouplingGraph device = namedTopology("tree-20");
    const Circuit routed = routedCircuit(device, 12);

    const TranslationStats all_snail =
        translationStats(routed, BasisSpec{BasisKind::SqISwap});
    const TranslationStats all_cr =
        translationStats(routed, BasisSpec{BasisKind::CNOT});

    HeterogeneousBasis mixed(device, BasisSpec{BasisKind::SqISwap});
    mixed.setWhere([](int a, int b) { return (a + b) % 2 == 0; },
                   BasisSpec{BasisKind::CNOT});
    const TranslationStats stats =
        heterogeneousTranslationStats(routed, mixed);

    const double lo = std::min(all_snail.total_duration,
                               all_cr.total_duration);
    const double hi = std::max(all_snail.total_duration,
                               all_cr.total_duration);
    EXPECT_GE(stats.total_duration, lo - 1e-9);
    EXPECT_LE(stats.total_duration, hi + 1e-9);
}

TEST(HeteroBasis, UnroutedCircuitRejected)
{
    // A logical circuit with a 2Q op on an uncoupled pair must throw.
    const CouplingGraph device = namedTopology("square-16");
    Circuit c(device.numQubits());
    int far = -1;
    for (int q = 1; q < device.numQubits(); ++q) {
        if (!device.hasEdge(0, q)) {
            far = q;
            break;
        }
    }
    ASSERT_GE(far, 0);
    c.cx(0, far);
    HeterogeneousBasis bases(device, BasisSpec{BasisKind::SqISwap});
    EXPECT_THROW(heterogeneousTranslationStats(c, bases), SnailError);
}

} // namespace
} // namespace snail
