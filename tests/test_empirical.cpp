/**
 * @file
 * Tests for the empirical (NuOp-measured) basis-count model: agreement
 * with the analytic rules where those exist (n = 1, 2), sensible counts
 * for deeper roots, caching, and failure behaviour.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "decomp/empirical_counts.hpp"
#include "linalg/random_unitary.hpp"
#include "weyl/basis_counts.hpp"

namespace snail
{
namespace
{

constexpr double kQ = M_PI / 4.0;
constexpr double kE = M_PI / 8.0;

TEST(Empirical, MatchesAnalyticSqiswapOnReferenceClasses)
{
    const EmpiricalBasisModel model = nrootIswapModel(2.0);
    const WeylCoords cases[] = {
        {0, 0, 0},         // identity
        {kE, kE, 0},       // sqiswap itself
        {kQ, 0, 0},        // CNOT class
        {kQ, kQ, 0},       // iSWAP class
        {kQ, kQ, kQ},      // SWAP class
    };
    for (const WeylCoords &w : cases) {
        EXPECT_EQ(model.count(w), sqiswapCount(w))
            << "(" << w.a << "," << w.b << "," << w.c << ")";
    }
}

TEST(Empirical, MatchesAnalyticIswapOnReferenceClasses)
{
    const EmpiricalBasisModel model = nrootIswapModel(1.0);
    EXPECT_EQ(model.count(WeylCoords{0, 0, 0}), iswapCount({0, 0, 0}));
    EXPECT_EQ(model.count(WeylCoords{kQ, kQ, 0}), 1);
    EXPECT_EQ(model.count(WeylCoords{kQ, 0, 0}), 2);
    EXPECT_EQ(model.count(WeylCoords{kQ, kQ, kQ}), 3);
}

TEST(Empirical, ThirdRootCountsAreConsistent)
{
    const EmpiricalBasisModel model = nrootIswapModel(3.0);
    // The 3rd root itself: one pulse.
    const double v = M_PI / 12.0;
    EXPECT_EQ(model.count(WeylCoords{v, v, 0}), 1);
    // CNOT class: at least 3 pulses are needed (interaction strength),
    // and NuOp finds a template by k = 4.
    const int cx_count = model.count(WeylCoords{kQ, 0, 0});
    EXPECT_GE(cx_count, 3);
    EXPECT_LE(cx_count, 4);
    // SWAP needs at least as many as CNOT.
    EXPECT_GE(model.count(WeylCoords{kQ, kQ, kQ}), cx_count);
}

TEST(Empirical, DurationScalesInverselyWithRoot)
{
    const WeylCoords swap_class{kQ, kQ, kQ};
    const EmpiricalBasisModel m2 = nrootIswapModel(2.0);
    // SWAP: 3 pulses x 0.5 = 1.5 iSWAP units.
    EXPECT_DOUBLE_EQ(m2.duration(swap_class), 1.5);
}

TEST(Empirical, CountsAreCached)
{
    const EmpiricalBasisModel model = nrootIswapModel(2.0);
    EXPECT_EQ(model.cacheSize(), 0u);
    model.count(WeylCoords{kQ, 0, 0});
    EXPECT_EQ(model.cacheSize(), 1u);
    model.count(WeylCoords{kQ, 0, 0});
    EXPECT_EQ(model.cacheSize(), 1u);
    model.count(WeylCoords{kQ, kQ, 0});
    EXPECT_EQ(model.cacheSize(), 2u);
}

TEST(Empirical, AgreesWithAnalyticOnHaarSamples)
{
    const EmpiricalBasisModel model = nrootIswapModel(2.0);
    Rng rng(71);
    for (int i = 0; i < 4; ++i) {
        const Matrix u = haarUnitary(4, rng);
        EXPECT_EQ(model.count(u), sqiswapCount(weylCoordinates(u)))
            << "sample " << i;
    }
}

TEST(Empirical, RejectsBadConstruction)
{
    EXPECT_THROW(EmpiricalBasisModel(gates::h(), 1.0), SnailError);
    EXPECT_THROW(EmpiricalBasisModel(gates::cx(), 0.0), SnailError);
    EXPECT_THROW(EmpiricalBasisModel(gates::cx(), 1.0, 0), SnailError);
}

} // namespace
} // namespace snail
