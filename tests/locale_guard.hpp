/**
 * @file
 * Test-only RAII guard that flips LC_NUMERIC to a comma-decimal locale.
 *
 * The locale-independence regression tests (QASM real literals,
 * pipeline-spec pass arguments) need a locale whose decimal separator
 * is ',' to prove std::from_chars ignores it where strtod/stod did
 * not.  Minimal containers often ship only "C"; valid() reports
 * whether a comma-decimal locale was actually installed so tests can
 * GTEST_SKIP gracefully.  The destructor restores the previous locale
 * even when the test body throws.
 */

#ifndef SNAILQC_TESTS_LOCALE_GUARD_HPP
#define SNAILQC_TESTS_LOCALE_GUARD_HPP

#include <clocale>
#include <string>

namespace snail
{

class CommaDecimalLocale
{
  public:
    CommaDecimalLocale()
    {
        const char *previous = std::setlocale(LC_NUMERIC, nullptr);
        _previous = previous ? previous : "C";
        for (const char *name : {"de_DE.UTF-8", "de_DE", "fr_FR.UTF-8",
                                 "fr_FR", "it_IT.UTF-8", "nl_NL.UTF-8"}) {
            if (std::setlocale(LC_NUMERIC, name) != nullptr) {
                // Trust but verify: the locale must actually format
                // with a decimal comma.
                const struct lconv *conv = std::localeconv();
                if (conv && conv->decimal_point &&
                    conv->decimal_point[0] == ',') {
                    _valid = true;
                    return;
                }
            }
        }
        std::setlocale(LC_NUMERIC, _previous.c_str());
    }

    ~CommaDecimalLocale() { std::setlocale(LC_NUMERIC, _previous.c_str()); }

    CommaDecimalLocale(const CommaDecimalLocale &) = delete;
    CommaDecimalLocale &operator=(const CommaDecimalLocale &) = delete;

    /** True when a comma-decimal locale is active for this scope. */
    bool valid() const { return _valid; }

  private:
    std::string _previous;
    bool _valid = false;
};

} // namespace snail

#endif // SNAILQC_TESTS_LOCALE_GUARD_HPP
