/**
 * @file
 * Tests for the persistent work-stealing scheduler: the exactly-once
 * / in-order determinism contract parallelFor already promised, plus
 * the properties the serve daemon leans on — nested fan-outs bounded
 * by the pool size (no thread explosion), bit-identical results at
 * any concurrency, caller participation (progress even with a
 * one-thread pool), and exception propagation from nested bodies.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/scheduler.hpp"
#include "common/thread_pool.hpp"

namespace snail
{
namespace
{

TEST(Scheduler, RunsEveryIndexExactlyOnce)
{
    Scheduler pool(4);
    std::vector<std::atomic<int>> hits(257);
    pool.run(hits.size(), 4, [&](std::size_t i) {
        hits[i].fetch_add(1);
    });
    for (const std::atomic<int> &hit : hits) {
        EXPECT_EQ(hit.load(), 1);
    }
}

TEST(Scheduler, InlineWhenSerial)
{
    // concurrency 1 must run on the calling thread — callers rely on
    // this for thread-local state (and it must not touch the pool).
    Scheduler pool(4);
    const std::thread::id caller = std::this_thread::get_id();
    std::vector<std::thread::id> seen(8);
    pool.run(seen.size(), 1, [&](std::size_t i) {
        seen[i] = std::this_thread::get_id();
    });
    for (const std::thread::id &id : seen) {
        EXPECT_EQ(id, caller);
    }
}

TEST(Scheduler, NestedFanOutStaysWithinPool)
{
    // The serve scenario: a batch fans out, every job fans out again.
    // Ad-hoc spawning would run outer*inner threads; the scheduler
    // must never exceed workers + the calling thread.
    constexpr unsigned kWorkers = 3;
    Scheduler pool(kWorkers);

    std::mutex mutex;
    std::set<std::thread::id> threads;
    std::atomic<int> leaves{0};

    pool.run(8, 8, [&](std::size_t) {
        pool.run(8, 8, [&](std::size_t) {
            {
                const std::lock_guard<std::mutex> lock(mutex);
                threads.insert(std::this_thread::get_id());
            }
            leaves.fetch_add(1);
        });
    });

    EXPECT_EQ(leaves.load(), 64);
    EXPECT_LE(threads.size(), kWorkers + 1u);
}

TEST(Scheduler, DeeplyNestedOnSingleWorkerPool)
{
    // A 1-worker pool plus the caller must still finish arbitrary
    // nesting — the caller drains its own groups, so nothing can
    // deadlock waiting for a free worker.
    Scheduler pool(1);
    std::atomic<int> leaves{0};
    pool.run(4, 4, [&](std::size_t) {
        pool.run(4, 4, [&](std::size_t) {
            pool.run(4, 4, [&](std::size_t) {
                leaves.fetch_add(1);
            });
        });
    });
    EXPECT_EQ(leaves.load(), 64);
}

TEST(Scheduler, ResultsIdenticalAcrossConcurrency)
{
    // The determinism contract: output depends only on the index.
    const auto compute = [](unsigned concurrency) {
        Scheduler pool(4);
        std::vector<unsigned long long> out(64);
        pool.run(out.size(), concurrency, [&](std::size_t i) {
            unsigned long long h = 0xcbf29ce484222325ULL ^ i;
            for (int round = 0; round < 100; ++round) {
                h = (h ^ (h >> 33)) * 0x100000001b3ULL;
            }
            out[i] = h;
        });
        return out;
    };
    const std::vector<unsigned long long> serial = compute(1);
    EXPECT_EQ(compute(4), serial);
    EXPECT_EQ(compute(16), serial);
}

TEST(Scheduler, LowestIndexExceptionWins)
{
    Scheduler pool(4);
    try {
        pool.run(32, 4, [](std::size_t i) {
            if (i == 5 || i == 20) {
                SNAIL_THROW("boom at " << i);
            }
        });
        FAIL() << "expected an exception";
    } catch (const SnailError &error) {
        EXPECT_NE(std::string(error.what()).find("boom at 5"),
                  std::string::npos);
    }
}

TEST(Scheduler, ExceptionFromNestedBodyPropagates)
{
    Scheduler pool(2);
    EXPECT_THROW(pool.run(4, 4,
                          [&](std::size_t outer) {
                              pool.run(4, 4, [&](std::size_t inner) {
                                  if (outer == 2 && inner == 3) {
                                      SNAIL_THROW("nested boom");
                                  }
                              });
                          }),
                 SnailError);

    // The pool survives the unwind and accepts new work.
    std::atomic<int> done{0};
    pool.run(8, 4, [&](std::size_t) { done.fetch_add(1); });
    EXPECT_EQ(done.load(), 8);
}

TEST(Scheduler, GlobalPoolBacksParallelFor)
{
    // parallelFor is now a thin wrapper over Scheduler::global();
    // nested parallelFor must obey the same bound as nested run().
    std::mutex mutex;
    std::set<std::thread::id> threads;
    std::atomic<int> leaves{0};
    parallelFor(6, 6, [&](std::size_t) {
        parallelFor(6, 6, [&](std::size_t) {
            {
                const std::lock_guard<std::mutex> lock(mutex);
                threads.insert(std::this_thread::get_id());
            }
            leaves.fetch_add(1);
        });
    });
    EXPECT_EQ(leaves.load(), 36);
    EXPECT_LE(threads.size(),
              static_cast<std::size_t>(
                  Scheduler::global().workerCount()) +
                  1u);
}

TEST(Scheduler, ConcurrentIndependentSubmitters)
{
    // Two client threads sharing one pool — the daemon's steady
    // state.  Both groups must finish, each index exactly once.
    Scheduler pool(2);
    std::vector<std::atomic<int>> a(64);
    std::vector<std::atomic<int>> b(64);

    std::thread other([&]() {
        pool.run(b.size(), 4, [&](std::size_t i) {
            b[i].fetch_add(1);
        });
    });
    pool.run(a.size(), 4, [&](std::size_t i) {
        a[i].fetch_add(1);
    });
    other.join();

    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].load(), 1);
        EXPECT_EQ(b[i].load(), 1);
    }
}

} // namespace
} // namespace snail
