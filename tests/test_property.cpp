/**
 * @file
 * Property-based integration sweeps (parameterized gtest):
 *
 *  - every (benchmark, topology) pair routes validly and deterministically;
 *  - routed circuits of every benchmark are simulation-equivalent to the
 *    originals at small width;
 *  - Weyl coordinates behave correctly across continuous gate families
 *    (FSIM sweep, CR sweep, RZZ sweep);
 *  - metric monotonicity: richer topologies never lose to heavy-hex on
 *    total SWAPs for the same workload at scale.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "circuits/registry.hpp"
#include "sim/equivalence.hpp"
#include "topology/registry.hpp"
#include "transpiler/pipeline.hpp"
#include "weyl/basis_counts.hpp"

namespace snail
{
namespace
{

// ---------------------------------------------------------------------
// Routing validity across the full benchmark x topology grid.
// ---------------------------------------------------------------------

using GridParam = std::tuple<BenchmarkKind, std::string>;

class RoutingGrid : public ::testing::TestWithParam<GridParam>
{
};

TEST_P(RoutingGrid, RoutesValidly)
{
    const auto [bench, topo_name] = GetParam();
    const CouplingGraph g = namedTopology(topo_name);
    const int width = std::min(12, g.numQubits() - 2);
    const Circuit c = makeBenchmark(bench, width, 19);
    TranspileOptions opts;
    opts.stochastic_trials = 6;
    opts.seed = 37;
    const TranspileResult r = transpile(c, g, opts);
    for (const auto &op : r.routed.instructions()) {
        if (op.isTwoQubit()) {
            ASSERT_TRUE(g.hasEdge(op.q0(), op.q1()))
                << op.toString() << " on " << topo_name;
        }
    }
    // Gate content is preserved: original 2Q ops + router-added SWAPs.
    // (swaps_total counts all SWAPs in the routed circuit, including any
    // the benchmark itself contains, e.g. QFT's bit reversal.)
    EXPECT_EQ(r.routed.countTwoQubit(),
              c.countTwoQubit() + r.metrics.swaps_total -
                  c.countKind(GateKind::Swap));
}

TEST_P(RoutingGrid, DeterministicUnderSeed)
{
    const auto [bench, topo_name] = GetParam();
    const CouplingGraph g = namedTopology(topo_name);
    const int width = std::min(10, g.numQubits() - 2);
    const Circuit c = makeBenchmark(bench, width, 19);
    TranspileOptions opts;
    opts.stochastic_trials = 4;
    opts.seed = 41;
    const TranspileResult a = transpile(c, g, opts);
    const TranspileResult b = transpile(c, g, opts);
    EXPECT_EQ(a.metrics.swaps_total, b.metrics.swaps_total);
    EXPECT_EQ(a.metrics.basis_2q_total, b.metrics.basis_2q_total);
}

INSTANTIATE_TEST_SUITE_P(
    BenchmarkByTopology, RoutingGrid,
    ::testing::Combine(
        ::testing::Values(BenchmarkKind::QuantumVolume, BenchmarkKind::Qft,
                          BenchmarkKind::QaoaVanilla,
                          BenchmarkKind::TimHamiltonian,
                          BenchmarkKind::Adder, BenchmarkKind::Ghz),
        ::testing::Values("square-16", "tree-20", "tree-rr-20",
                          "corral11-16", "corral12-16", "hypercube-16",
                          "heavy-hex-20")),
    [](const ::testing::TestParamInfo<GridParam> &info) {
        std::string s =
            std::string(benchmarkName(std::get<0>(info.param))) + "_" +
            std::get<1>(info.param);
        for (auto &ch : s) {
            if (ch == '-') {
                ch = '_';
            }
        }
        return s;
    });

// ---------------------------------------------------------------------
// Simulated end-to-end equivalence per benchmark (small widths).
// ---------------------------------------------------------------------

class EquivalenceSweep : public ::testing::TestWithParam<BenchmarkKind>
{
};

TEST_P(EquivalenceSweep, RoutedCircuitComputesTheBenchmark)
{
    const BenchmarkKind bench = GetParam();
    const CouplingGraph g = namedTopology("corral11-16");
    const int width = 6;
    const Circuit c = makeBenchmark(bench, width, 23);
    TranspileOptions opts;
    opts.stochastic_trials = 6;
    opts.seed = 43;
    const TranspileResult r = transpile(c, g, opts);
    Rng vrng(44);
    EXPECT_TRUE(routedCircuitEquivalent(c, r.routed,
                                        r.initial_layout.v2p(),
                                        r.final_layout.v2p(), 2, vrng));
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, EquivalenceSweep,
    ::testing::Values(BenchmarkKind::QuantumVolume, BenchmarkKind::Qft,
                      BenchmarkKind::QaoaVanilla,
                      BenchmarkKind::TimHamiltonian, BenchmarkKind::Adder,
                      BenchmarkKind::Ghz),
    [](const ::testing::TestParamInfo<BenchmarkKind> &info) {
        return benchmarkName(info.param);
    });

// ---------------------------------------------------------------------
// Weyl coordinates across continuous gate families.
// ---------------------------------------------------------------------

class AngleSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(AngleSweep, FsimFamilyCoordinates)
{
    const double theta = GetParam();
    // FSIM(theta, 0) is an iSWAP-type exchange: coordinates
    // (|theta|/2, |theta|/2, 0) folded into the chamber.
    const WeylCoords w =
        weylCoordinates(gates::fsim(theta, 0.0).matrix());
    const double expected = std::abs(theta) / 2.0;
    if (expected <= M_PI / 4.0 + 1e-12) {
        EXPECT_NEAR(w.a, expected, 1e-8);
        EXPECT_NEAR(w.b, expected, 1e-8);
        EXPECT_NEAR(w.c, 0.0, 1e-8);
    } else {
        // Folded back into the chamber.
        EXPECT_LE(w.a, M_PI / 4.0 + 1e-9);
    }
}

TEST_P(AngleSweep, CrossResonanceStaysOnCnotAxis)
{
    const double theta = GetParam();
    const WeylCoords w =
        weylCoordinates(gates::crossRes(theta).matrix());
    EXPECT_NEAR(w.b, 0.0, 1e-8);
    EXPECT_NEAR(w.c, 0.0, 1e-8);
}

TEST_P(AngleSweep, RzzMatchesCPhaseClass)
{
    const double theta = GetParam();
    // RZZ(theta) and CPhase(2 theta... ) are locally equivalent up to
    // angle convention: RZZ(t) ~ CPhase(-2t) classes coincide.
    const WeylCoords zz = weylCoordinates(gates::rzz(theta).matrix());
    const WeylCoords cp =
        weylCoordinates(gates::cphase(2.0 * theta).matrix());
    EXPECT_NEAR(zz.a, cp.a, 1e-8);
    EXPECT_NEAR(zz.b, cp.b, 1e-8);
    EXPECT_NEAR(zz.c, cp.c, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Angles, AngleSweep,
                         ::testing::Values(0.1, 0.25, 0.5, 0.9, 1.2,
                                           M_PI / 2.0, 2.2, 3.0),
                         [](const ::testing::TestParamInfo<double> &info) {
                             return "angle" +
                                    std::to_string(info.index);
                         });

// ---------------------------------------------------------------------
// Cross-topology SWAP ordering at 84 qubits.
// ---------------------------------------------------------------------

TEST(Ordering, HypercubeBeatsHeavyHexAtScale)
{
    const Circuit c = makeBenchmark(BenchmarkKind::QuantumVolume, 32, 29);
    TranspileOptions opts;
    opts.stochastic_trials = 6;
    opts.seed = 47;
    const auto hh = transpile(c, namedTopology("heavy-hex-84"), opts);
    const auto hc = transpile(c, namedTopology("hypercube-84"), opts);
    const auto tr = transpile(c, namedTopology("tree-84"), opts);
    EXPECT_LT(hc.metrics.swaps_total, hh.metrics.swaps_total);
    EXPECT_LT(tr.metrics.swaps_total, hh.metrics.swaps_total);
}

} // namespace
} // namespace snail
