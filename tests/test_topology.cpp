/**
 * @file
 * Unit tests for coupling graphs and the paper's topology zoo.
 *
 * The Table 1 / Table 2 assertions pin the *exact* values our generators
 * produce.  Where our construction matches the paper's reported numbers
 * exactly (square, hypercube, corral, tree distances, alt-diag, ...) the
 * paper value is asserted; where the paper's construction is ambiguous
 * (heavy-hex carvings, tree average connectivity) the nearby measured
 * value is asserted and the deviation is recorded in EXPERIMENTS.md.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "topology/builders.hpp"
#include "topology/registry.hpp"

namespace snail
{
namespace
{

TEST(CouplingGraph, DistanceTableOverflowGuardThrowsTypedError)
{
    // The flat distance table stores hop counts as uint16 with 0xFFFF
    // reserved for "unreachable", so any graph that could have a
    // diameter beyond 65534 — i.e. more than 65535 vertices — must be
    // rejected with the typed error before the (> 8 GiB) table is
    // even allocated.
    CouplingGraph big(70000, "too-big");
    big.addEdge(0, 1);
    try {
        big.distance(0, 1);
        FAIL() << "70000-qubit graph must not build a uint16 table";
    } catch (const DistanceOverflowError &e) {
        EXPECT_EQ(e.graphName(), "too-big");
        EXPECT_EQ(e.numQubits(), 70000);
        EXPECT_NE(std::string(e.what()).find("65535"), std::string::npos);
    }
    // The accept side of the boundary (n == kMaxTabledQubits = 65535)
    // cannot be exercised here: building its table means an ~8 GiB
    // allocation.  The reject side pins the guard's threshold instead.
    CouplingGraph barely_over(CouplingGraph::kMaxTabledQubits + 1,
                              "barely-over");
    barely_over.addEdge(0, 1);
    EXPECT_THROW(barely_over.distance(0, 1), DistanceOverflowError);
}

TEST(CouplingGraph, DistanceMatchesBfsOnFlatTable)
{
    // The flat row-major table must reproduce BFS hop counts in both
    // index orders, with the diagonal at zero.
    CouplingGraph g(6, "probe");
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 3);
    g.addEdge(3, 4);
    g.addEdge(4, 5);
    g.addEdge(5, 0);  // 6-cycle
    for (int a = 0; a < 6; ++a) {
        EXPECT_EQ(g.distance(a, a), 0);
        for (int b = 0; b < 6; ++b) {
            const int around = std::abs(a - b);
            const int expected = std::min(around, 6 - around);
            EXPECT_EQ(g.distance(a, b), expected) << a << "," << b;
            EXPECT_EQ(g.distance(b, a), expected);
        }
    }
    // Adding an edge invalidates and rebuilds the table.
    g.addEdge(0, 3);
    EXPECT_EQ(g.distance(0, 3), 1);
    EXPECT_EQ(g.distance(1, 3), 2);
}

TEST(CouplingGraph, EdgeBasics)
{
    CouplingGraph g(4);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(0, 1);  // idempotent
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_TRUE(g.hasEdge(1, 0));
    EXPECT_FALSE(g.hasEdge(0, 2));
    EXPECT_EQ(g.edgeCount(), 2u);
    EXPECT_EQ(g.degree(1), 2);
    EXPECT_THROW(g.addEdge(0, 0), SnailError);
    EXPECT_THROW(g.addEdge(0, 9), SnailError);
}

TEST(CouplingGraph, DistancesOnPath)
{
    CouplingGraph g(4);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 3);
    EXPECT_EQ(g.distance(0, 3), 3);
    EXPECT_EQ(g.distance(0, 0), 0);
    EXPECT_EQ(g.diameter(), 3);
    const auto path = g.shortestPath(0, 3);
    EXPECT_EQ(path, (std::vector<int>{0, 1, 2, 3}));
}

TEST(CouplingGraph, DisconnectedDetected)
{
    CouplingGraph g(4);
    g.addEdge(0, 1);
    g.addEdge(2, 3);
    EXPECT_FALSE(g.isConnected());
    EXPECT_THROW(g.distance(0, 3), SnailError);
}

TEST(CouplingGraph, DisconnectedErrorCarriesPairAndGraphName)
{
    // Regression: distance() on a disconnected pair used to throw a
    // bare SnailError; mid-routing failures now surface the typed
    // DisconnectedError naming the pair and the device.
    CouplingGraph g(5, "split-device");
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(3, 4);
    try {
        g.distance(2, 4);
        FAIL() << "distance on a disconnected pair must throw";
    } catch (const DisconnectedError &e) {
        EXPECT_EQ(e.qubitA(), 2);
        EXPECT_EQ(e.qubitB(), 4);
        EXPECT_EQ(e.graphName(), "split-device");
        const std::string msg = e.what();
        EXPECT_NE(msg.find("2"), std::string::npos) << msg;
        EXPECT_NE(msg.find("4"), std::string::npos) << msg;
        EXPECT_NE(msg.find("split-device"), std::string::npos) << msg;
    }
    // DisconnectedError remains catchable as the SnailError family.
    EXPECT_THROW(g.shortestPath(0, 3), SnailError);
}

TEST(CouplingGraph, AverageDistancePaperConvention)
{
    // Complete graph on 4 nodes: 12 ordered distinct pairs at distance 1,
    // 4 self pairs at 0 -> 12/16 = 0.75.
    CouplingGraph g(4);
    for (int a = 0; a < 4; ++a) {
        for (int b = a + 1; b < 4; ++b) {
            g.addEdge(a, b);
        }
    }
    EXPECT_NEAR(g.averageDistance(), 0.75, 1e-12);
    EXPECT_NEAR(g.averageDegree(), 3.0, 1e-12);
}

TEST(CouplingGraph, TrimKeepsConnectivity)
{
    const CouplingGraph g = squareLattice(4, 4).trimToSize(10);
    EXPECT_EQ(g.numQubits(), 10);
    EXPECT_TRUE(g.isConnected());
}

TEST(Builders, SquareLatticeStructure)
{
    const CouplingGraph g = squareLattice(3, 4);
    EXPECT_EQ(g.numQubits(), 12);
    // Edges: 3 rows x 3 + 2 x 4 = 9 + 8 = 17.
    EXPECT_EQ(g.edgeCount(), 17u);
    EXPECT_EQ(g.degree(0), 2);   // corner
    EXPECT_EQ(g.degree(5), 4);   // interior
}

TEST(Builders, AltDiagonalAddsBothDiagonalsOnHalfTheTiles)
{
    const CouplingGraph g = latticeWithAltDiagonals(3, 3);
    // Base 3x3 grid: 12 edges; tiles: 4, alternating: 2 tiles x 2 = 4.
    EXPECT_EQ(g.edgeCount(), 16u);
    EXPECT_TRUE(g.hasEdge(0, 4));  // diagonal of tile (0,0)
    EXPECT_TRUE(g.hasEdge(1, 3));
    EXPECT_FALSE(g.hasEdge(1, 5)); // tile (0,1) is skipped
}

TEST(Builders, HexLatticeDegreeCap)
{
    const CouplingGraph g = hexLattice(4, 5);
    for (int q = 0; q < g.numQubits(); ++q) {
        EXPECT_LE(g.degree(q), 3) << "qubit " << q;
    }
    EXPECT_TRUE(g.isConnected());
}

TEST(Builders, HeavyHexSubdividesEveryEdge)
{
    const CouplingGraph hex = hexLattice(2, 3);
    const CouplingGraph heavy = heavyHexLattice(2, 3);
    EXPECT_EQ(heavy.numQubits(),
              hex.numQubits() + static_cast<int>(hex.edgeCount()));
    EXPECT_EQ(heavy.edgeCount(), 2 * hex.edgeCount());
    // Heavy qubits (the subdividers) all have degree exactly 2.
    for (int q = hex.numQubits(); q < heavy.numQubits(); ++q) {
        EXPECT_EQ(heavy.degree(q), 2);
    }
}

TEST(Builders, FalconMatchesPublishedShape)
{
    const CouplingGraph f = ibmFalconHeavyHex();
    EXPECT_EQ(f.numQubits(), 27);
    EXPECT_EQ(f.edgeCount(), 28u);
    EXPECT_TRUE(f.isConnected());
    // Heavy-hex degree profile: no vertex exceeds 3.
    for (int q = 0; q < 27; ++q) {
        EXPECT_LE(f.degree(q), 3);
    }
}

TEST(Builders, HypercubeIsDistanceRegular)
{
    const CouplingGraph g = hypercube(4);
    EXPECT_EQ(g.numQubits(), 16);
    EXPECT_EQ(g.edgeCount(), 32u);
    for (int q = 0; q < 16; ++q) {
        EXPECT_EQ(g.degree(q), 4);
    }
    EXPECT_EQ(g.diameter(), 4);
    // Distance equals Hamming distance.
    EXPECT_EQ(g.distance(0, 15), 4);
    EXPECT_EQ(g.distance(0b0101, 0b0110), 2);
}

TEST(Builders, IncompleteHypercube84MatchesTable2)
{
    const CouplingGraph g = incompleteHypercube(84);
    EXPECT_EQ(g.numQubits(), 84);
    EXPECT_EQ(g.edgeCount(), 252u);              // AvgC = 6.0 exactly
    EXPECT_NEAR(g.averageDegree(), 6.0, 1e-12);  // Table 2
    EXPECT_EQ(g.diameter(), 7);                  // Table 2
    EXPECT_NEAR(g.averageDistance(), 3.32, 0.05); // Table 2: 3.32
}

TEST(Builders, TreeStructure20)
{
    const CouplingGraph g = modularTree(2);
    EXPECT_EQ(g.numQubits(), 20);
    // Module qubits: 3 siblings + router = degree 4; routers: 4 children
    // + 3 routers = 7.
    for (int w = 0; w < 4; ++w) {
        EXPECT_EQ(g.degree(w), 7);
    }
    for (int q = 4; q < 20; ++q) {
        EXPECT_EQ(g.degree(q), 4);
    }
}

TEST(Builders, TreeRoundRobinSpreadsUplinks)
{
    const CouplingGraph g = modularTreeRoundRobin(2);
    EXPECT_EQ(g.numQubits(), 20);
    // Same degree profile as the standard tree (Table 1: AvgC 4.6)...
    EXPECT_NEAR(g.averageDegree(), 4.6, 1e-12);
    // ...but each module reaches all four routers (no bottleneck):
    for (int module = 0; module < 4; ++module) {
        std::vector<bool> reached(4, false);
        for (int j = 0; j < 4; ++j) {
            const int qubit = 4 + 4 * module + j;
            for (int nb : g.neighbors(qubit)) {
                if (nb < 4) {
                    reached[static_cast<std::size_t>(nb)] = true;
                }
            }
        }
        for (int w = 0; w < 4; ++w) {
            EXPECT_TRUE(reached[static_cast<std::size_t>(w)])
                << "module " << module << " missing router " << w;
        }
    }
}

TEST(Builders, CorralDegrees)
{
    // Corral_{1,1}: every qubit couples to 5 others (Table 1: AvgC 5.0).
    const CouplingGraph c11 = corral(8, 1, 1);
    EXPECT_EQ(c11.numQubits(), 16);
    for (int q = 0; q < 16; ++q) {
        EXPECT_EQ(c11.degree(q), 5);
    }
    // Corral_{1,2}: degree 6 everywhere (Table 1: AvgC 6.0).
    const CouplingGraph c12 = corral(8, 1, 2);
    for (int q = 0; q < 16; ++q) {
        EXPECT_EQ(c12.degree(q), 6);
    }
}

/** Expected structural metrics for a named topology. */
struct TopologyExpectation
{
    const char *name;
    int qubits;
    int diameter;
    double avg_distance;
    double avg_degree;
    double tol_distance; //!< paper-exact entries use a tight tolerance
};

class PaperTables : public ::testing::TestWithParam<TopologyExpectation>
{
};

TEST_P(PaperTables, MatchesExpectedMetrics)
{
    const auto &e = GetParam();
    const CouplingGraph g = namedTopology(e.name);
    EXPECT_EQ(g.numQubits(), e.qubits);
    EXPECT_TRUE(g.isConnected());
    EXPECT_EQ(g.diameter(), e.diameter);
    EXPECT_NEAR(g.averageDistance(), e.avg_distance, e.tol_distance);
    EXPECT_NEAR(g.averageDegree(), e.avg_degree, 0.005);
}

INSTANTIATE_TEST_SUITE_P(
    Table1And2, PaperTables,
    ::testing::Values(
        // --- Table 1 (paper values reproduced exactly) ---
        TopologyExpectation{"square-16", 16, 6, 2.5, 3.0, 0.01},
        TopologyExpectation{"hypercube-16", 16, 4, 2.0, 4.0, 0.01},
        TopologyExpectation{"tree-20", 20, 3, 2.15, 4.6, 0.01},
        TopologyExpectation{"tree-rr-20", 20, 3, 2.03, 4.6, 0.01},
        TopologyExpectation{"corral11-16", 16, 4, 2.06, 5.0, 0.01},
        // Paper reports 2.0/1.5; our post-sharing construction gives
        // diameter 3 and AvgD 1.53 (documented deviation).
        TopologyExpectation{"corral12-16", 16, 3, 1.53, 6.0, 0.01},
        // Paper: Dia 7, AvgD 3.37, AvgC 2.45 on an unspecified carving.
        TopologyExpectation{"hex-20", 20, 7, 3.27, 2.4, 0.01},
        // Paper: Dia 8, AvgD 3.77, AvgC 2.1 (Falcon slice comes close).
        TopologyExpectation{"heavy-hex-20", 20, 9, 4.03, 2.0, 0.01},
        // --- Table 2 (paper values reproduced exactly where noted) ---
        TopologyExpectation{"square-84", 84, 17, 6.26, 3.55, 0.01},
        TopologyExpectation{"lattice-altdiag-84", 84, 11, 4.62, 5.12, 0.01},
        TopologyExpectation{"hypercube-84", 84, 7, 3.32, 6.0, 0.01},
        TopologyExpectation{"tree-84", 84, 5, 3.85, 4.90, 0.01},
        TopologyExpectation{"tree-rr-84", 84, 5, 3.65, 4.90, 0.01},
        // Paper: Dia 17, AvgD 6.95, AvgC 2.71.
        TopologyExpectation{"hex-84", 84, 17, 6.86, 2.69, 0.01},
        // Paper: Dia 21, AvgD 8.47, AvgC 2.26.
        TopologyExpectation{"heavy-hex-84", 84, 22, 8.68, 2.24, 0.01}),
    [](const ::testing::TestParamInfo<TopologyExpectation> &info) {
        std::string s = info.param.name;
        for (auto &ch : s) {
            if (ch == '-' || ch == ',') {
                ch = '_';
            }
        }
        return s;
    });

TEST(Registry, AllNamesBuildAndConnect)
{
    for (const auto &name : topologyNames()) {
        const CouplingGraph g = namedTopology(name);
        EXPECT_TRUE(g.isConnected()) << name;
        EXPECT_GE(g.numQubits(), 16) << name;
    }
}

TEST(Registry, UnknownNameThrows)
{
    EXPECT_THROW(namedTopology("no-such-topology"), SnailError);
}

TEST(Registry, TableListsAreRegistered)
{
    for (const auto &name : table1Names()) {
        EXPECT_NO_THROW(namedTopology(name)) << name;
    }
    for (const auto &name : table2Names()) {
        EXPECT_NO_THROW(namedTopology(name)) << name;
    }
}

} // namespace
} // namespace snail
