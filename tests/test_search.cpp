/**
 * @file
 * Tests for the guided co-design search subsystem (src/search/): the
 * hardware cost model's exact values per family, constraint sets and
 * their JSON forms, search-spec parsing and round-trips, the generator
 * registry and its edge cases (degenerate parameters, disconnected
 * corrals, duplicate-edge-free builds), mutation/build determinism,
 * and the driver's headline guarantees — byte-identical trace and
 * frontier at any thread count, checkpoint/resume with zero recompute,
 * and the fresh-evaluation budget.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "search/cost_model.hpp"
#include "search/driver.hpp"
#include "search/frontier.hpp"
#include "search/mutate.hpp"
#include "search/search_spec.hpp"
#include "topology/generators.hpp"

namespace snail
{
namespace
{

// ---------------------------------------------------------------- cost

TEST(CostModel, CorralCountsSnailsNotEdges)
{
    const CouplingGraph g = buildGeneratedTopology("corral", {8, 1, 2});
    const HardwareCost cost = hardwareCost("corral", {8, 1, 2}, g);
    EXPECT_EQ(cost.qubits, 16);
    EXPECT_EQ(cost.couplers, 8u); // one SNAIL per post
    EXPECT_EQ(cost.snails, 8u);
    EXPECT_LT(cost.couplers, g.edgeCount()) // the paper's argument
        << "SNAIL families must cost devices, not graph edges";
    EXPECT_DOUBLE_EQ(cost.wiring, 8.0 * (1 + 2));
}

TEST(CostModel, TreeCountsModules)
{
    const CouplingGraph g = buildGeneratedTopology("tree", {2});
    const HardwareCost cost = hardwareCost("tree", {2}, g);
    EXPECT_EQ(cost.qubits, 20);
    EXPECT_EQ(cost.snails, 5u); // 1 + 4
    EXPECT_EQ(cost.couplers, 5u);
    EXPECT_DOUBLE_EQ(cost.wiring, 4.0 + 5.0 * 4);
}

TEST(CostModel, HypercubeCountsEdgesWithLinearWiring)
{
    const CouplingGraph g = buildGeneratedTopology("hypercube", {3});
    const HardwareCost cost = hardwareCost("hypercube", {3}, g);
    EXPECT_EQ(cost.qubits, 8);
    EXPECT_EQ(cost.couplers, 12u);
    EXPECT_EQ(cost.snails, 0u); // pairwise couplers, no SNAILs
    // Each dimension d contributes 4 edges of linear distance 2^d.
    EXPECT_DOUBLE_EQ(cost.wiring, 4.0 * (1 + 2 + 4));
}

TEST(CostModel, SquareLatticeUnitWiring)
{
    const CouplingGraph g = buildGeneratedTopology("square", {4, 4});
    const HardwareCost cost = hardwareCost("square", {4, 4}, g);
    EXPECT_EQ(cost.qubits, 16);
    EXPECT_EQ(cost.couplers, 24u);
    EXPECT_DOUBLE_EQ(cost.wiring, 24.0);
    EXPECT_EQ(cost.max_degree, 4);
}

TEST(CostModel, ConstraintsFeasibilityAndViolation)
{
    const CouplingGraph g = buildGeneratedTopology("corral", {8, 1, 2});
    const HardwareCost cost = hardwareCost("corral", {8, 1, 2}, g);

    ConstraintSet loose;
    loose.max_couplers = 40;
    EXPECT_TRUE(loose.feasible(cost));
    EXPECT_DOUBLE_EQ(loose.violation(cost), 0.0);

    ConstraintSet tight;
    tight.max_couplers = 4; // 8 couplers: 100% overage
    EXPECT_FALSE(tight.feasible(cost));
    EXPECT_DOUBLE_EQ(tight.violation(cost), 1.0);

    ConstraintSet unset; // all bounds disabled
    EXPECT_TRUE(unset.feasible(cost));
}

TEST(CostModel, ConstraintJsonRoundTripAndRejection)
{
    ConstraintSet c;
    c.max_couplers = 40;
    c.max_degree = 4;
    const ConstraintSet back =
        constraintSetFromJson(constraintSetToJson(c));
    EXPECT_DOUBLE_EQ(back.max_couplers, 40.0);
    EXPECT_DOUBLE_EQ(back.max_degree, 4.0);
    EXPECT_DOUBLE_EQ(back.max_wiring, 0.0);

    EXPECT_THROW(
        constraintSetFromJson(JsonValue::parse("{\"max_frobs\": 3}")),
        SnailError);
    EXPECT_THROW(
        constraintSetFromJson(JsonValue::parse("{\"max_couplers\": 0}")),
        SnailError);
}

// ---------------------------------------------------------- generators

TEST(Generators, RegistryListsAndFinds)
{
    EXPECT_FALSE(generatorNames().empty());
    const GeneratorInfo *corral = findGenerator("corral");
    ASSERT_NE(corral, nullptr);
    EXPECT_EQ(corral->params.size(), 3u);
    EXPECT_EQ(findGenerator("no-such-family"), nullptr);
}

TEST(Generators, DegenerateParametersThrow)
{
    EXPECT_THROW(buildGeneratedTopology("corral", {2, 1, 1}), SnailError);
    EXPECT_THROW(buildGeneratedTopology("corral", {8, 0, 1}), SnailError);
    EXPECT_THROW(buildGeneratedTopology("corral", {8, 1, 8}), SnailError);
    EXPECT_THROW(buildGeneratedTopology("tree", {0}), SnailError);
    EXPECT_THROW(buildGeneratedTopology("tree", {6}), SnailError);
    EXPECT_THROW(buildGeneratedTopology("square", {0, 4}), SnailError);
    EXPECT_THROW(buildGeneratedTopology("hypercube", {0}), SnailError);
    // Arity mismatch and unknown family fail up front with clear errors.
    EXPECT_THROW(buildGeneratedTopology("corral", {8, 1}), SnailError);
    EXPECT_THROW(buildGeneratedTopology("nope", {1}), SnailError);
}

TEST(Generators, SmallestCorralBuildsAndConnects)
{
    const CouplingGraph g = buildGeneratedTopology("corral", {3, 1, 2});
    EXPECT_EQ(g.numQubits(), 6);
    EXPECT_TRUE(g.isConnected());
}

TEST(Generators, EvenStrideCorralDisconnectsAndIsRejected)
{
    // corral(8,2,2): both strides even, so odd and even posts form two
    // independent rings — a real graph the *search* must refuse.
    const CouplingGraph g = buildGeneratedTopology("corral", {8, 2, 2});
    EXPECT_FALSE(g.isConnected());

    Candidate candidate{"corral", {8, 2, 2}, "sqiswap", 1.0};
    EXPECT_FALSE(tryBuildCandidate(candidate, 2, 64).has_value());
}

TEST(Generators, BuildsHaveNoDuplicateOrSelfEdges)
{
    // The corral builder visits each post clique exhaustively and
    // leans on idempotent addEdge; make sure no generator path ever
    // yields parallel or self edges.
    const std::vector<std::pair<std::string, std::vector<int>>> cases = {
        {"corral", {5, 1, 2}},   {"corral", {8, 1, 3}},
        {"tree", {2}},           {"tree-rr", {2}},
        {"hypercube", {4}},      {"incomplete-hypercube", {11}},
        {"square", {3, 5}},      {"hex", {3, 4}},
        {"heavy-hex", {2, 3}},   {"lattice-altdiag", {3, 3}},
    };
    for (const auto &[family, args] : cases) {
        const CouplingGraph g = buildGeneratedTopology(family, args);
        std::set<std::pair<int, int>> seen;
        for (const auto &[a, b] : g.edges()) {
            EXPECT_NE(a, b) << family << ": self edge at " << a;
            const auto edge = std::minmax(a, b);
            EXPECT_TRUE(seen.insert({edge.first, edge.second}).second)
                << family << ": duplicate edge " << a << "-" << b;
        }
        EXPECT_EQ(seen.size(), g.edgeCount()) << family;
    }
}

// -------------------------------------------------------- spec parsing

SearchSpec
tinySpec()
{
    SearchSpec spec;
    spec.name = "tiny";
    spec.seed = 11;
    CircuitSpec ghz;
    ghz.bench = "ghz";
    ghz.widths = {5};
    spec.workloads = {ghz};
    spec.pipeline = "dense,sabre-route,elide,basis=sqiswap";
    spec.space.families = {"corral", "hypercube"};
    spec.space.bases = {"sqiswap"};
    spec.space.min_qubits = 5;
    spec.space.max_qubits = 20;
    spec.constraints.max_couplers = 12;
    spec.anneal.iterations = 3;
    spec.anneal.proposals = 2;
    spec.anneal.t0 = 4.0;
    spec.anneal.t1 = 0.5;
    return spec;
}

TEST(SearchSpecJson, RoundTrips)
{
    const SearchSpec spec = tinySpec();
    const SearchSpec back = searchSpecFromJson(searchSpecToJson(spec));
    EXPECT_EQ(back.name, spec.name);
    EXPECT_EQ(back.seed, spec.seed);
    EXPECT_EQ(back.pipeline, spec.pipeline);
    EXPECT_EQ(back.space.families, spec.space.families);
    EXPECT_EQ(back.space.bases, spec.space.bases);
    EXPECT_EQ(back.space.min_qubits, 5);
    EXPECT_EQ(back.space.max_qubits, 20);
    EXPECT_DOUBLE_EQ(back.constraints.max_couplers, 12.0);
    EXPECT_EQ(back.anneal.iterations, 3);
    EXPECT_EQ(back.anneal.proposals, 2);
    EXPECT_EQ(back.objective.metric, "basis_2q_total");
    // Serialize again: stable fixed point.
    EXPECT_EQ(searchSpecToJson(back).dump(), searchSpecToJson(spec).dump());
}

TEST(SearchSpecJson, RejectsBadSpecs)
{
    JsonValue good = searchSpecToJson(tinySpec());

    JsonValue unknown_key = good;
    unknown_key.object()["surprise"] = JsonValue(1);
    EXPECT_THROW(searchSpecFromJson(unknown_key), SnailError);

    JsonValue bad_family = good;
    bad_family.object()["space"].object()["families"] =
        JsonValue::parse("[\"moebius\"]");
    EXPECT_THROW(searchSpecFromJson(bad_family), SnailError);

    JsonValue bad_metric = good;
    bad_metric.object()["objective"].object()["metric"] =
        JsonValue("qualityness");
    EXPECT_THROW(searchSpecFromJson(bad_metric), SnailError);

    JsonValue bad_mode = good;
    bad_mode.object()["anneal"].object()["mode"] = JsonValue("tempered");
    EXPECT_THROW(searchSpecFromJson(bad_mode), SnailError);

    JsonValue bad_ramp = good;
    bad_ramp.object()["anneal"].object()["t1"] = JsonValue(9.0);
    EXPECT_THROW(searchSpecFromJson(bad_ramp), SnailError);

    JsonValue no_workloads = good;
    no_workloads.object()["workloads"] = JsonValue::parse("[]");
    EXPECT_THROW(searchSpecFromJson(no_workloads), SnailError);

    JsonValue bad_fidelity = good;
    bad_fidelity.object()["space"].object()["fidelities"] =
        JsonValue::parse("[1.5]");
    EXPECT_THROW(searchSpecFromJson(bad_fidelity), SnailError);
}

// ------------------------------------------------------------ mutation

TEST(Mutation, LabelsMatchSweepGeneratorNaming)
{
    Candidate candidate{"corral", {11, 1, 2}, "sqiswap", 1.0};
    EXPECT_EQ(candidateLabel(candidate), "corral(11,1,2)-sqiswap");
    candidate.fidelity_2q = 0.995;
    EXPECT_EQ(candidateLabel(candidate), "corral(11,1,2)-sqiswap@f0.995");
}

TEST(Mutation, FitArgsLandNearTargetQubitCount)
{
    EXPECT_EQ(fitArgs("corral", 16), (std::vector<int>{8, 1, 2}));
    EXPECT_EQ(fitArgs("hypercube", 8), (std::vector<int>{3}));
    EXPECT_EQ(fitArgs("tree", 20), (std::vector<int>{2}));
    EXPECT_EQ(fitArgs("incomplete-hypercube", 13),
              (std::vector<int>{13}));
    const std::vector<int> square = fitArgs("square", 12);
    EXPECT_GE(square[0] * square[1], 12);
}

TEST(Mutation, DeterministicUnderStreamRng)
{
    const SearchSpec spec = tinySpec();
    const BuiltCandidate start = initialCandidate(spec.space, 5);

    const auto walk = [&]() {
        std::vector<std::string> labels;
        for (unsigned long long id = 0; id < 8; ++id) {
            Rng rng = Rng::stream(123, id);
            labels.push_back(
                proposeCandidate(start, spec.space, 5, rng)
                    .target.name());
        }
        return labels;
    };
    EXPECT_EQ(walk(), walk()); // same streams, same proposals
}

TEST(Mutation, InitialCandidateThrowsOnImpossibleSpace)
{
    SearchSpace space;
    space.families = {"hypercube"};
    space.bases = {"sqiswap"};
    space.min_qubits = 2;
    space.max_qubits = 3; // no hypercube has 2..3 qubits... except d=1
    // hypercube(1) has 2 qubits, so that space is fine; squeeze harder:
    space.min_qubits = 3;
    space.max_qubits = 3;
    EXPECT_THROW(initialCandidate(space, 3), SnailError);
}

// ------------------------------------------------------------ frontier

EvaluatedCandidate
frontierPoint(const std::string &label, std::size_t couplers,
              double quality)
{
    EvaluatedCandidate point;
    point.label = label;
    point.cost.couplers = couplers;
    point.quality = quality;
    point.feasible = true;
    return point;
}

TEST(Frontier, KeepsOnlyNonDominatedPoints)
{
    std::vector<EvaluatedCandidate> frontier;
    updateFrontier(frontier, frontierPoint("a", 10, 50.0), false);
    updateFrontier(frontier, frontierPoint("b", 20, 40.0), false);
    ASSERT_EQ(frontier.size(), 2u); // trade-off: both survive

    // Dominates "b" (cheaper and better), coexists with "a".
    updateFrontier(frontier, frontierPoint("c", 15, 35.0), false);
    ASSERT_EQ(frontier.size(), 2u);
    EXPECT_EQ(frontier[0].label, "a");
    EXPECT_EQ(frontier[1].label, "c");

    // Dominated by "a": rejected.
    updateFrontier(frontier, frontierPoint("d", 12, 55.0), false);
    EXPECT_EQ(frontier.size(), 2u);

    // Exact tie with "a": incumbent wins.
    updateFrontier(frontier, frontierPoint("e", 10, 50.0), false);
    EXPECT_EQ(frontier.size(), 2u);
    EXPECT_EQ(frontier[0].label, "a");

    // Infeasible points never enter.
    EvaluatedCandidate infeasible = frontierPoint("f", 1, 1.0);
    infeasible.feasible = false;
    updateFrontier(frontier, infeasible, false);
    EXPECT_EQ(frontier.size(), 2u);
}

TEST(Frontier, MaximizeDirectionFlips)
{
    std::vector<EvaluatedCandidate> frontier;
    updateFrontier(frontier, frontierPoint("low", 10, 0.90), true);
    updateFrontier(frontier, frontierPoint("high", 10, 0.99), true);
    ASSERT_EQ(frontier.size(), 1u);
    EXPECT_EQ(frontier[0].label, "high");
}

// -------------------------------------------------------------- driver

std::string
traceString(const SearchRun &run)
{
    std::ostringstream os;
    writeSearchTrace(os, run);
    return os.str();
}

std::string
frontierString(const SearchRun &run)
{
    std::ostringstream os;
    writeFrontierCsv(os, run);
    return os.str();
}

TEST(SearchDriver, ByteIdenticalAcrossThreadCounts)
{
    const SearchSpec spec = tinySpec();

    SearchOptions one;
    one.threads = 1;
    const SearchRun base = runSearch(spec, one);
    EXPECT_GT(base.evaluations, 0u);
    EXPECT_FALSE(base.trace.empty());

    for (unsigned threads : {4u, 16u}) {
        SearchOptions options;
        options.threads = threads;
        const SearchRun run = runSearch(spec, options);
        EXPECT_EQ(traceString(run), traceString(base))
            << "trace diverged at " << threads << " threads";
        EXPECT_EQ(frontierString(run), frontierString(base))
            << "frontier diverged at " << threads << " threads";
    }
}

TEST(SearchDriver, ResumeRecomputesNothingAndMatchesBytes)
{
    const SearchSpec spec = tinySpec();
    const std::string checkpoint =
        testing::TempDir() + "search_resume.jsonl";
    std::remove(checkpoint.c_str());

    SearchOptions cold;
    cold.threads = 1;
    cold.checkpoint_path = checkpoint;
    const SearchRun first = runSearch(spec, cold);
    EXPECT_GT(first.stats.computed, 0u);

    SearchOptions warm = cold;
    warm.resume = true;
    const SearchRun second = runSearch(spec, warm);
    EXPECT_EQ(second.stats.computed, 0u)
        << "a full checkpoint must satisfy every evaluation";
    EXPECT_GT(second.stats.restored, 0u);
    EXPECT_EQ(traceString(second), traceString(first));
    EXPECT_EQ(frontierString(second), frontierString(first));
}

TEST(SearchDriver, ResumeAfterKillRecomputesOnlyTheTail)
{
    const SearchSpec spec = tinySpec();
    const std::string checkpoint =
        testing::TempDir() + "search_kill.jsonl";
    std::remove(checkpoint.c_str());

    SearchOptions cold;
    cold.threads = 1;
    cold.checkpoint_path = checkpoint;
    const SearchRun first = runSearch(spec, cold);

    // Simulate a kill partway through: keep only the first two lines
    // (plus a torn third) of the checkpoint.
    std::vector<std::string> lines;
    {
        std::ifstream in(checkpoint);
        std::string line;
        while (std::getline(in, line)) {
            lines.push_back(line);
        }
    }
    ASSERT_GT(lines.size(), 2u);
    {
        std::ofstream out(checkpoint, std::ios::trunc);
        out << lines[0] << "\n" << lines[1] << "\n";
        out << lines[2].substr(0, lines[2].size() / 2); // torn line
    }

    SearchOptions warm = cold;
    warm.resume = true;
    const SearchRun resumed = runSearch(spec, warm);
    EXPECT_EQ(resumed.stats.restored, 2u);
    EXPECT_GT(resumed.stats.computed, 0u) << "tail must be recomputed";
    EXPECT_LT(resumed.stats.computed, first.stats.computed +
                                          first.stats.from_cache)
        << "restored prefix must not be recomputed";
    EXPECT_EQ(traceString(resumed), traceString(first));
    EXPECT_EQ(frontierString(resumed), frontierString(first));

    // The healed checkpoint satisfies a third run completely.
    const SearchRun third = runSearch(spec, warm);
    EXPECT_EQ(third.stats.computed, 0u);
}

TEST(SearchDriver, BudgetStopsAtIterationBoundary)
{
    SearchSpec spec = tinySpec();
    spec.anneal.iterations = 8;

    SearchOptions options;
    options.threads = 1;
    options.budget = 1; // the initial evaluation alone exhausts it
    const SearchRun run = runSearch(spec, options);
    EXPECT_TRUE(run.budget_exhausted);
    EXPECT_TRUE(run.trace.empty());
    EXPECT_TRUE(run.has_best); // the initial point still reports
}

TEST(SearchDriver, DescentModeNeverAcceptsUphill)
{
    SearchSpec spec = tinySpec();
    spec.anneal.mode = SearchMode::Descent;
    spec.anneal.iterations = 4;

    SearchOptions options;
    options.threads = 1;
    const SearchRun run = runSearch(spec, options);
    double energy = run.trace.empty()
                        ? 0.0
                        : run.trace.front().current.energy;
    for (const IterationRecord &record : run.trace) {
        EXPECT_LE(record.current.energy, energy + 1e-12)
            << "descent accepted an uphill move at iteration "
            << record.iteration;
        energy = record.current.energy;
    }
}

} // namespace
} // namespace snail
