/**
 * @file
 * Tests for the extended benchmark circuits (Bernstein-Vazirani, VQE
 * ansatz, W state) and their registry integration.
 *
 * BV and W state have analytically known output states, so those are
 * verified amplitude-by-amplitude with the statevector simulator.
 */

#include <cmath>
#include <complex>

#include <gtest/gtest.h>

#include "circuits/circuits.hpp"
#include "circuits/registry.hpp"
#include "common/error.hpp"
#include "sim/statevector.hpp"

namespace snail
{
namespace
{

// ---------------------------------------------------------------------
// Bernstein-Vazirani
// ---------------------------------------------------------------------

TEST(BernsteinVazirani, OutputsSecretDeterministically)
{
    // After the circuit, the data register holds the secret exactly and
    // the ancilla is |->: each computational amplitude is supported on
    // a single data pattern.
    const int n = 6;
    Circuit c = bernsteinVazirani(n, 31);
    Statevector sv(n);
    sv.run(c);

    // Find the (unique) data pattern with nonzero probability.
    const int data_bits = n - 1;
    std::vector<double> prob(1u << data_bits, 0.0);
    for (std::size_t idx = 0; idx < sv.amplitudes().size(); ++idx) {
        const std::size_t data = idx & ((1u << data_bits) - 1);
        prob[data] += std::norm(sv.amplitudes()[idx]);
    }
    int support = 0;
    for (double p : prob) {
        if (p > 1e-9) {
            ++support;
            EXPECT_NEAR(p, 1.0, 1e-9);
        }
    }
    EXPECT_EQ(support, 1);
}

TEST(BernsteinVazirani, SecretMatchesOracleStructure)
{
    // The measured pattern must equal the set of data qubits the oracle
    // coupled to the ancilla.
    const int n = 7;
    Circuit c = bernsteinVazirani(n, 123);
    std::size_t oracle_mask = 0;
    for (const auto &op : c.instructions()) {
        if (op.gate().kind() == GateKind::CX) {
            oracle_mask |= 1ull << op.q0();
        }
    }
    Statevector sv(n);
    sv.run(c);
    const std::size_t data_mask = (1ull << (n - 1)) - 1;
    for (std::size_t idx = 0; idx < sv.amplitudes().size(); ++idx) {
        if (std::norm(sv.amplitudes()[idx]) > 1e-9) {
            EXPECT_EQ(idx & data_mask, oracle_mask);
        }
    }
}

TEST(BernsteinVazirani, SeedChangesSecret)
{
    Circuit a = bernsteinVazirani(10, 1);
    Circuit b = bernsteinVazirani(10, 2);
    // Different secrets -> different CX counts with high probability;
    // at minimum the circuits must be valid and nonempty.
    EXPECT_GE(a.countKind(GateKind::CX), 1u);
    EXPECT_GE(b.countKind(GateKind::CX), 1u);
}

TEST(BernsteinVazirani, AllCxShareTheAncilla)
{
    const int n = 9;
    Circuit c = bernsteinVazirani(n, 77);
    for (const auto &op : c.instructions()) {
        if (op.gate().kind() == GateKind::CX) {
            EXPECT_EQ(op.q1(), n - 1);
        }
    }
}

TEST(BernsteinVazirani, RejectsTooFewQubits)
{
    EXPECT_THROW(bernsteinVazirani(1), SnailError);
}

// ---------------------------------------------------------------------
// W state
// ---------------------------------------------------------------------

class WStateWidth : public ::testing::TestWithParam<int>
{
};

TEST_P(WStateWidth, ExactAmplitudes)
{
    const int n = GetParam();
    Circuit c = wState(n);
    Statevector sv(n);
    sv.run(c);

    const double want = 1.0 / std::sqrt(static_cast<double>(n));
    for (std::size_t idx = 0; idx < sv.amplitudes().size(); ++idx) {
        const double mag = std::abs(sv.amplitudes()[idx]);
        const bool one_hot = idx != 0 && (idx & (idx - 1)) == 0;
        if (one_hot) {
            EXPECT_NEAR(mag, want, 1e-10) << "idx " << idx;
        } else {
            EXPECT_NEAR(mag, 0.0, 1e-10) << "idx " << idx;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, WStateWidth,
                         ::testing::Values(2, 3, 4, 5, 7, 10));

TEST(WState, GateCountIsLinear)
{
    const Circuit c = wState(12);
    // 1 X + (n-1) blocks of {ry, cz, ry, cx}.
    EXPECT_EQ(c.size(), 1u + 4u * 11u);
    EXPECT_EQ(c.countTwoQubit(), 2u * 11u);
}

TEST(WState, RejectsTooFewQubits)
{
    EXPECT_THROW(wState(1), SnailError);
}

// ---------------------------------------------------------------------
// VQE ansatz
// ---------------------------------------------------------------------

TEST(VqeAnsatz, StructureMatchesLayers)
{
    const int n = 6;
    const int layers = 3;
    Circuit c = vqeAnsatz(n, layers, 5);
    // (layers+1) rotation layers of 2n gates + layers ladders of n-1 CX.
    EXPECT_EQ(c.size(), static_cast<std::size_t>((layers + 1) * 2 * n +
                                                 layers * (n - 1)));
    EXPECT_EQ(c.countKind(GateKind::CX),
              static_cast<std::size_t>(layers * (n - 1)));
}

TEST(VqeAnsatz, LadderIsNearestNeighbor)
{
    Circuit c = vqeAnsatz(8, 2, 5);
    for (const auto &op : c.instructions()) {
        if (op.isTwoQubit()) {
            EXPECT_EQ(op.q1() - op.q0(), 1);
        }
    }
}

TEST(VqeAnsatz, SeedDeterminism)
{
    Circuit a = vqeAnsatz(5, 2, 42);
    Circuit b = vqeAnsatz(5, 2, 42);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.instructions()[i].gate().params(),
                  b.instructions()[i].gate().params());
    }
}

TEST(VqeAnsatz, RejectsBadArguments)
{
    EXPECT_THROW(vqeAnsatz(1, 2), SnailError);
    EXPECT_THROW(vqeAnsatz(4, 0), SnailError);
}

// ---------------------------------------------------------------------
// Registry integration
// ---------------------------------------------------------------------

TEST(ExtendedRegistry, ByNameAndByKindAgree)
{
    for (const char *name : {"bv", "vqe", "wstate"}) {
        Circuit c = makeBenchmark(name, 8);
        EXPECT_EQ(c.numQubits(), 8) << name;
        EXPECT_GT(c.size(), 0u) << name;
    }
}

TEST(ExtendedRegistry, ExtendedSupersetOfPaperSet)
{
    const auto paper = allBenchmarks();
    const auto extended = extendedBenchmarks();
    EXPECT_EQ(paper.size(), 6u);
    EXPECT_EQ(extended.size(), 9u);
    for (std::size_t i = 0; i < paper.size(); ++i) {
        EXPECT_EQ(paper[i], extended[i]);
    }
}

TEST(ExtendedRegistry, LabelsAndNamesDefined)
{
    for (BenchmarkKind kind : extendedBenchmarks()) {
        EXPECT_GT(std::string(benchmarkName(kind)).size(), 0u);
        EXPECT_GT(std::string(benchmarkLabel(kind)).size(), 0u);
    }
}

} // namespace
} // namespace snail
