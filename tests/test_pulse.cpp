/**
 * @file
 * Tests for the time-domain pulse substrate.
 *
 * The RK4 integrator is validated against closed-form solutions
 * (constant Hamiltonians, Rabi oscillation); the driven-exchange model
 * is validated against the rotating-wave results of
 * sim/parametric_exchange.hpp in its regime of validity, and the
 * counter-rotating corrections are checked to scale the right way.
 */

#include <cmath>
#include <complex>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "pulse/exchange_pulse.hpp"
#include "pulse/integrator.hpp"
#include "sim/parametric_exchange.hpp"

namespace snail
{
namespace
{

// ---------------------------------------------------------------------
// Integrator
// ---------------------------------------------------------------------

TEST(Integrator, ConstantDiagonalPhaseEvolution)
{
    // H = diag(w): |psi(t)> = e^{-i w t} |psi(0)>.
    const double w = 1.7;
    TimeDependentHamiltonian h = [w](double) {
        Matrix m(1, 1);
        m(0, 0) = Complex{w, 0.0};
        return m;
    };
    const auto psi = evolveState(h, {Complex{1.0, 0.0}}, 0.0, 2.0, 400);
    const Complex want = std::exp(Complex{0.0, -w * 2.0});
    EXPECT_NEAR(std::abs(psi[0] - want), 0.0, 1e-8);
}

TEST(Integrator, RabiOscillation)
{
    // H = g sigma_x: P(0 -> 1)(t) = sin^2(g t).
    const double g = 0.9;
    TimeDependentHamiltonian h = [g](double) {
        Matrix m(2, 2);
        m(0, 1) = m(1, 0) = Complex{g, 0.0};
        return m;
    };
    for (double t : {0.3, 1.0, 2.4}) {
        const auto psi = evolveState(
            h, {Complex{1.0, 0.0}, Complex{0.0, 0.0}}, 0.0, t, 2000);
        EXPECT_NEAR(std::norm(psi[1]), std::pow(std::sin(g * t), 2), 1e-8)
            << "t = " << t;
    }
}

TEST(Integrator, PropagatorIsUnitary)
{
    TimeDependentHamiltonian h = [](double t) {
        Matrix m(2, 2);
        m(0, 0) = Complex{0.4, 0.0};
        m(1, 1) = Complex{-0.4, 0.0};
        m(0, 1) = Complex{0.3 * std::cos(3.0 * t), 0.1};
        m(1, 0) = std::conj(m(0, 1));
        return m;
    };
    const Matrix u = evolvePropagator(h, 2, 0.0, 5.0, 4000);
    EXPECT_LT(unitarityError(u), 1e-8);
}

TEST(Integrator, ConvergesWithStepCount)
{
    // Halving the step size must shrink the error (4th-order method).
    const double g = 1.3;
    TimeDependentHamiltonian h = [g](double) {
        Matrix m(2, 2);
        m(0, 1) = m(1, 0) = Complex{g, 0.0};
        return m;
    };
    auto error_at = [&](int steps) {
        const auto psi = evolveState(
            h, {Complex{1.0, 0.0}, Complex{0.0, 0.0}}, 0.0, 1.0, steps);
        return std::abs(std::norm(psi[1]) -
                        std::pow(std::sin(g), 2));
    };
    const double coarse = error_at(16);
    const double fine = error_at(32);
    EXPECT_LT(fine, coarse);
    EXPECT_LT(fine, coarse / 8.0); // ~16x for a clean 4th-order method
}

TEST(Integrator, RejectsBadArguments)
{
    TimeDependentHamiltonian h = [](double) { return Matrix(1, 1); };
    EXPECT_THROW(evolveState(h, {Complex{1.0, 0.0}}, 0.0, 1.0, 0),
                 SnailError);
    EXPECT_THROW(evolveState(h, {}, 0.0, 1.0, 10), SnailError);
}

// ---------------------------------------------------------------------
// Envelopes
// ---------------------------------------------------------------------

TEST(Envelope, SquareIsFlat)
{
    PulseEnvelope env;
    EXPECT_DOUBLE_EQ(env.value(0.5, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(env.value(-0.1, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(env.value(1.1, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(env.area(3.0), 3.0);
}

TEST(Envelope, FlattopRampsAndArea)
{
    PulseEnvelope env;
    env.kind = EnvelopeKind::Flattop;
    env.rise_time = 1.0;
    EXPECT_DOUBLE_EQ(env.value(0.0, 10.0), 0.0);
    EXPECT_DOUBLE_EQ(env.value(0.5, 10.0), 0.5);
    EXPECT_DOUBLE_EQ(env.value(5.0, 10.0), 1.0);
    EXPECT_DOUBLE_EQ(env.value(9.5, 10.0), 0.5);
    EXPECT_DOUBLE_EQ(env.value(10.0, 10.0), 0.0);
    EXPECT_DOUBLE_EQ(env.area(10.0), 9.0);
}

TEST(Envelope, CalibrationRecoversArea)
{
    PulseEnvelope env;
    env.kind = EnvelopeKind::Flattop;
    env.rise_time = 0.8;
    const double target_area = 2.5;
    const double d = calibrateFlattopDuration(env, target_area);
    EXPECT_NEAR(env.area(d), target_area, 1e-12);
}

// ---------------------------------------------------------------------
// Driven exchange vs closed forms
// ---------------------------------------------------------------------

TEST(DrivenExchange, ResonantMatchesClosedFormRWA)
{
    // qubit_delta = 0 disables counter-rotation: the integration must
    // reproduce P = sin^2(g t) exactly.
    ExchangePulse pulse;
    pulse.coupling = 1.0;
    for (double t : {0.2, 0.785, 1.4}) {
        EXPECT_NEAR(simulatedSwapProbability(pulse, t),
                    std::pow(std::sin(t), 2), 1e-7)
            << "t = " << t;
    }
}

TEST(DrivenExchange, DetunedMatchesRabiFormula)
{
    // Compare against sim/parametric_exchange's chevron closed form.
    ExchangePulse pulse;
    pulse.coupling = 1.0;
    pulse.detuning = 1.5;
    ExchangeDrive drive;
    drive.coupling = 1.0;
    drive.detuning = 1.5;
    for (double t : {0.3, 0.9, 1.7}) {
        EXPECT_NEAR(simulatedSwapProbability(pulse, t),
                    excitationSwapProbability(drive, t), 1e-6)
            << "t = " << t;
    }
}

TEST(DrivenExchange, ChevronRowMatchesClosedForm)
{
    const std::vector<double> times = {0.25, 0.5, 0.75, 1.0, 1.5, 2.0};
    ExchangePulse pulse;
    pulse.coupling = 0.8;
    pulse.detuning = -0.6;
    ExchangeDrive drive;
    drive.coupling = 0.8;
    drive.detuning = -0.6;
    const auto simulated = simulatedChevronRow(pulse, times);
    const auto closed = chevronRow(drive, times);
    ASSERT_EQ(simulated.size(), closed.size());
    for (std::size_t i = 0; i < times.size(); ++i) {
        EXPECT_NEAR(simulated[i], closed[i], 1e-6) << "i = " << i;
    }
}

TEST(DrivenExchange, CounterRotatingErrorScalesDown)
{
    // RWA error must shrink as the qubit splitting Delta grows
    // relative to g (the SNAIL's design regime: GHz splittings, MHz
    // couplings).
    const double g = 1.0;
    const double duration = M_PI / 2.0; // full iSWAP pulse
    const double err_close = rwaError(g, 5.0, duration);
    const double err_mid = rwaError(g, 20.0, duration);
    const double err_far = rwaError(g, 80.0, duration);
    EXPECT_GT(err_close, err_mid);
    EXPECT_GT(err_mid, err_far);
    EXPECT_LT(err_far, 0.02);
}

TEST(DrivenExchange, RwaErrorVanishesWithoutCounterTerm)
{
    EXPECT_NEAR(rwaError(1.0, 0.0, 1.0), 0.0, 1e-7);
}

TEST(DrivenExchange, CalibratedFlattopHitsRootISwapAngles)
{
    // A flattop pulse calibrated to the square-pulse area must realize
    // the same n-root rotation (area theorem for resonant drive).
    for (int n : {1, 2, 3, 4}) {
        const double square_t = M_PI / (2.0 * n); // g = 1
        PulseEnvelope env;
        env.kind = EnvelopeKind::Flattop;
        env.rise_time = 0.3;
        ExchangePulse pulse;
        pulse.coupling = 1.0;
        pulse.envelope = env;
        const double d = calibrateFlattopDuration(env, square_t);
        const double want = std::pow(std::sin(square_t), 2);
        EXPECT_NEAR(simulatedSwapProbability(pulse, d), want, 1e-6)
            << "n = " << n;
    }
}

TEST(DrivenExchange, PropagatorUnitary)
{
    ExchangePulse pulse;
    pulse.coupling = 1.2;
    pulse.detuning = 0.4;
    pulse.qubit_delta = 30.0;
    const Matrix u = drivenExchangePropagator(pulse, 2.0);
    EXPECT_LT(unitarityError(u), 1e-7);
}

} // namespace
} // namespace snail
