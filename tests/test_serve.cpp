/**
 * @file
 * Tests for the serve subsystem: job-spec parsing and normalization,
 * the Service request surface (ping/version/stats/errors), admission
 * control with retry_after_ms, cache-hit behaviour incl. a Service
 * restart over the same directory (byte-identical replies), and a
 * real daemon round-trip over a UNIX socket — client requests, batch
 * with 100% second-pass cache hits, shutdown op stopping serve().
 */

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/error.hpp"
#include "common/version.hpp"
#include "explore/engine.hpp"
#include "explore/report.hpp"
#include "explore/shard.hpp"
#include "serve/client.hpp"
#include "serve/job.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace snail
{
namespace
{

namespace fs = std::filesystem;

/** Fresh empty cache directory under the test tmpdir. */
std::string
freshDir(const std::string &name)
{
    const std::string path = testing::TempDir() + name;
    fs::remove_all(path);
    return path;
}

/** A transpile request for a small benchmark. */
JsonValue
transpileRequest(const std::string &bench = "qft", int width = 4)
{
    JsonValue::Object circuit;
    circuit["bench"] = JsonValue(bench);
    circuit["width"] = JsonValue(width);
    JsonValue::Object target;
    target["name"] = JsonValue("corral11-16-sqiswap");
    JsonValue::Object body;
    body["op"] = JsonValue("transpile");
    body["circuit"] = JsonValue(std::move(circuit));
    body["target"] = JsonValue(std::move(target));
    body["pipeline"] =
        JsonValue("dense,stochastic-route=2,elide,basis=sqiswap");
    return JsonValue(std::move(body));
}

bool
isOk(const JsonValue &response)
{
    const JsonValue *ok = response.find("ok");
    return ok != nullptr && ok->isBool() && ok->asBool();
}

TEST(ServeJob, SpecRoundTripsThroughJson)
{
    const JsonValue wire = transpileRequest();
    const JobSpec spec = JobSpec::fromJson(wire);
    EXPECT_EQ(spec.bench, "qft");
    EXPECT_EQ(spec.width, 4);
    EXPECT_EQ(spec.target_name, "corral11-16-sqiswap");
    EXPECT_EQ(spec.seed, kDefaultTranspileSeed);

    const JobSpec again = JobSpec::fromJson(spec.toJson());
    EXPECT_EQ(again.bench, spec.bench);
    EXPECT_EQ(again.width, spec.width);
    EXPECT_EQ(again.pipeline, spec.pipeline);
    EXPECT_EQ(again.seed, spec.seed);
}

TEST(ServeJob, DefaultAndExplicitPipelineShareTheCacheKey)
{
    // "" resolves to the default flow *normalized through spec()*, so
    // the implicit and explicit spellings address one cache entry.
    JobSpec implicit_spec = JobSpec::fromJson(transpileRequest());
    implicit_spec.pipeline = "";
    const ResolvedJob implicit_job = resolveJob(implicit_spec);

    JobSpec explicit_spec = implicit_spec;
    explicit_spec.pipeline = implicit_job.pipeline_spec;
    const ResolvedJob explicit_job = resolveJob(explicit_spec);

    EXPECT_FALSE(implicit_job.pipeline_spec.empty());
    EXPECT_FALSE(explicit_job.cacheKey() < implicit_job.cacheKey());
    EXPECT_FALSE(implicit_job.cacheKey() < explicit_job.cacheKey());
}

TEST(ServeJob, BadSpecsThrow)
{
    JsonValue::Object no_circuit;
    no_circuit["op"] = JsonValue("transpile");
    EXPECT_THROW(JobSpec::fromJson(JsonValue(std::move(no_circuit))),
                 SnailError);

    JsonValue bad_seed = transpileRequest();
    bad_seed.object()["seed"] = JsonValue("not-hex");
    EXPECT_THROW(JobSpec::fromJson(bad_seed), SnailError);

    JobSpec unknown_bench = JobSpec::fromJson(transpileRequest());
    unknown_bench.bench = "no-such-bench";
    EXPECT_THROW(resolveJob(unknown_bench), SnailError);
}

TEST(ServeService, PingVersionStats)
{
    ServiceOptions options;
    options.cache_dir = freshDir("serve_basic");
    Service service(options);

    JsonValue::Object ping;
    ping["op"] = JsonValue("ping");
    EXPECT_TRUE(isOk(service.handle(JsonValue(std::move(ping)))));

    JsonValue::Object version;
    version["op"] = JsonValue("version");
    const JsonValue vr = service.handle(JsonValue(std::move(version)));
    ASSERT_TRUE(isOk(vr));
    EXPECT_EQ(vr.at("protocol").asInt(), kServeProtocolVersion);
    EXPECT_FALSE(vr.at("git_sha").asString().empty());

    JsonValue::Object stats;
    stats["op"] = JsonValue("stats");
    const JsonValue sr = service.handle(JsonValue(std::move(stats)));
    ASSERT_TRUE(isOk(sr));
    EXPECT_EQ(sr.at("cache").at("entries").asInt(), 0);
    EXPECT_GE(sr.at("scheduler").at("workers").asInt(), 1);
    // Monitoring fields: pool_size aliases workers; queue_depth is a
    // backlog snapshot, 0 for an idle service.
    EXPECT_EQ(sr.at("scheduler").at("pool_size").asInt(),
              sr.at("scheduler").at("workers").asInt());
    EXPECT_EQ(sr.at("scheduler").at("queue_depth").asInt(), 0);
}

TEST(ServeService, ErrorsAreResponsesNotThrows)
{
    ServiceOptions options;
    options.cache_dir = freshDir("serve_errors");
    Service service(options);

    JsonValue::Object unknown;
    unknown["op"] = JsonValue("frobnicate");
    EXPECT_FALSE(isOk(service.handle(JsonValue(std::move(unknown)))));

    // Malformed line -> error response, never an exception.
    const std::string reply = service.handleLine("{not json");
    EXPECT_FALSE(isOk(JsonValue::parse(reply)));

    // A job that fails to resolve reports, daemon keeps serving.
    JsonValue bad = transpileRequest("no-such-bench", 4);
    const JsonValue br = service.handle(bad);
    ASSERT_FALSE(isOk(br));
    EXPECT_NE(br.at("error").asString().find("no-such-bench"),
              std::string::npos);
    JsonValue::Object ping;
    ping["op"] = JsonValue("ping");
    EXPECT_TRUE(isOk(service.handle(JsonValue(std::move(ping)))));
}

TEST(ServeService, TranspileCachesAndRestartServesBytes)
{
    ServiceOptions options;
    options.cache_dir = freshDir("serve_cache");

    std::string cold_result;
    {
        Service service(options);
        const JsonValue first = service.handle(transpileRequest());
        ASSERT_TRUE(isOk(first));
        EXPECT_FALSE(first.at("cached").asBool());
        cold_result = first.at("result").dump();

        const JsonValue second = service.handle(transpileRequest());
        ASSERT_TRUE(isOk(second));
        EXPECT_TRUE(second.at("cached").asBool());
        EXPECT_EQ(second.at("result").dump(), cold_result);
    }

    // A new Service over the same directory = daemon restart: the
    // job must come back cached and byte-identical.
    Service restarted(options);
    const JsonValue warm = restarted.handle(transpileRequest());
    ASSERT_TRUE(isOk(warm));
    EXPECT_TRUE(warm.at("cached").asBool());
    EXPECT_EQ(warm.at("result").dump(), cold_result);
}

TEST(ServeService, BatchRejectsBeyondQueueLimitWithRetryAfter)
{
    ServiceOptions options;
    options.cache_dir = freshDir("serve_backpressure");
    options.queue_limit = 1;
    Service service(options);

    JsonValue::Array jobs;
    jobs.push_back(transpileRequest("qft", 4));
    jobs.push_back(transpileRequest("ghz", 4));
    JsonValue::Object batch;
    batch["op"] = JsonValue("batch");
    batch["jobs"] = JsonValue(std::move(jobs));

    const JsonValue rejected =
        service.handle(JsonValue(std::move(batch)));
    ASSERT_FALSE(isOk(rejected));
    const JsonValue *retry = rejected.find("retry_after_ms");
    ASSERT_NE(retry, nullptr) << "backpressure must carry a retry hint";
    EXPECT_GT(retry->asInt(), 0);

    // A single job still fits the queue.
    EXPECT_TRUE(isOk(service.handle(transpileRequest())));
}

TEST(ServeService, BatchCountsCacheHits)
{
    ServiceOptions options;
    options.cache_dir = freshDir("serve_batch");
    Service service(options);

    JsonValue::Array jobs;
    jobs.push_back(transpileRequest("qft", 4));
    jobs.push_back(transpileRequest("ghz", 4));
    jobs.push_back(transpileRequest("bv", 5));
    JsonValue::Object batch;
    batch["op"] = JsonValue("batch");
    batch["jobs"] = JsonValue(std::move(jobs));
    const JsonValue request(std::move(batch));

    const JsonValue cold = service.handle(request);
    ASSERT_TRUE(isOk(cold));
    EXPECT_EQ(cold.at("jobs").asInt(), 3);
    EXPECT_EQ(cold.at("cache_hits").asInt(), 0);

    const JsonValue warm = service.handle(request);
    ASSERT_TRUE(isOk(warm));
    EXPECT_EQ(warm.at("cache_hits").asInt(), 3);
    EXPECT_EQ(warm.at("results").asArray().size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(warm.at("results").asArray()[i].at("result").dump(),
                  cold.at("results").asArray()[i].at("result").dump());
    }
}

TEST(ServeDaemon, SocketRoundTripAndShutdownOp)
{
    // Keep the path short: sun_path holds ~107 bytes.
    const std::string socket_path =
        "/tmp/snailqc-test-" + std::to_string(::getpid()) + ".sock";

    ServerOptions options;
    options.socket_path = socket_path;
    options.service.cache_dir = freshDir("serve_daemon");
    options.handle_signals = false;

    Server server(options);
    std::thread daemon([&server]() { server.serve(); });

    // The listener binds before accept; retry briefly anyway.
    std::unique_ptr<Client> client;
    for (int attempt = 0; attempt < 50 && !client; ++attempt) {
        try {
            client = std::make_unique<Client>(socket_path);
        } catch (const SnailError &) {
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
    }
    ASSERT_TRUE(client) << "daemon never came up";

    JsonValue::Object ping;
    ping["op"] = JsonValue("ping");
    EXPECT_TRUE(isOk(client->call(JsonValue(std::move(ping)))));

    const JsonValue cold = client->call(transpileRequest());
    ASSERT_TRUE(isOk(cold));
    EXPECT_FALSE(cold.at("cached").asBool());

    // Second connection, same job: served from the persistent store.
    Client second(socket_path);
    const JsonValue warm = second.call(transpileRequest());
    ASSERT_TRUE(isOk(warm));
    EXPECT_TRUE(warm.at("cached").asBool());
    EXPECT_EQ(warm.at("result").dump(), cold.at("result").dump());

    JsonValue::Object shutdown;
    shutdown["op"] = JsonValue("shutdown");
    EXPECT_TRUE(isOk(second.call(JsonValue(std::move(shutdown)))));

    daemon.join(); // serve() returns on the shutdown op
    EXPECT_FALSE(fs::exists(socket_path))
        << "clean shutdown must unlink the socket";
}

TEST(ServeService, SweepShardOpReturnsMergeableSlices)
{
    SweepSpec spec;
    spec.name = "serve-shard";
    spec.seed = 5;
    spec.circuits.push_back(CircuitSpec{"ghz", {6}, ""});
    spec.circuits.push_back(CircuitSpec{"qft", {6}, ""});
    TargetSpec target;
    target.target = "corral11-16-sqiswap";
    spec.targets.push_back(std::move(target));
    spec.pipelines.push_back("dense,stochastic-route=4");

    ServiceOptions options;
    options.cache_dir = freshDir("serve_shard");
    Service service(options);

    const auto shardRequest = [&](unsigned index, unsigned count) {
        JsonValue::Object shard;
        shard["index"] = JsonValue(static_cast<double>(index));
        shard["count"] = JsonValue(static_cast<double>(count));
        JsonValue::Object body;
        body["op"] = JsonValue("sweep_shard");
        body["spec"] = sweepSpecToJson(spec);
        body["shard"] = JsonValue(std::move(shard));
        return service.handle(JsonValue(std::move(body)));
    };

    const JsonValue r0 = shardRequest(0, 2);
    const JsonValue r1 = shardRequest(1, 2);
    ASSERT_TRUE(isOk(r0));
    ASSERT_TRUE(isOk(r1));
    EXPECT_EQ(r0.at("point_set").asString(),
              r1.at("point_set").asString());
    EXPECT_EQ(static_cast<std::size_t>(
                  r0.at("points").asNumber() + r1.at("points").asNumber()),
              static_cast<std::size_t>(r0.at("total_points").asNumber()));
    EXPECT_EQ(r0.at("records").asArray().size(),
              static_cast<std::size_t>(r0.at("points").asNumber()));

    // Writing each response's header + records as JSONL reproduces a
    // `sweep --shard` checkpoint; the merge must accept the pair and
    // reproduce a direct run's report byte for byte.
    std::vector<std::string> files;
    for (const JsonValue *response : {&r0, &r1}) {
        const std::string path =
            testing::TempDir() + "serve_shard_" +
            std::to_string(files.size()) + ".jsonl";
        std::ofstream out(path, std::ios::trunc);
        out << response->at("header").dump() << '\n';
        for (const JsonValue &record :
             response->at("records").asArray()) {
            out << record.dump() << '\n';
        }
        files.push_back(path);
    }
    const SweepRun merged = mergeSweepShards(spec, files);
    const SweepRun direct = runSweep(spec, EngineOptions{});
    std::ostringstream merged_csv, direct_csv;
    writeSweepCsv(merged_csv, merged);
    writeSweepCsv(direct_csv, direct);
    EXPECT_EQ(merged_csv.str(), direct_csv.str());

    // Slice validation happens before any work is admitted.
    const JsonValue bad = shardRequest(5, 2);
    EXPECT_FALSE(isOk(bad));
}

} // namespace
} // namespace snail
