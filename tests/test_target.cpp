/**
 * @file
 * Tests for the Target device model: construction and per-edge/qubit
 * property lookup, Eq. 12 fidelity scaling, JSON round-trips and file
 * I/O, uniform-target equivalence with the legacy (graph, basis)
 * pipelines (bit-for-bit), the noise-aware passes (noise-route on a
 * rigged two-path device, basis=auto heterogeneous scoring,
 * score-fidelity), and the typed DisconnectedError surfacing from
 * routing on a broken device.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "circuits/circuits.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "gates/gate.hpp"
#include "sim/equivalence.hpp"
#include "target/target.hpp"
#include "topology/registry.hpp"
#include "transpiler/hetero_basis.hpp"
#include "transpiler/pass_registry.hpp"
#include "transpiler/passes.hpp"
#include "transpiler/pipeline.hpp"

namespace snail
{
namespace
{

/** Diamond device: two equal-length paths 0-1-3 (good) and 0-2-3 (bad). */
Target
riggedTwoPath()
{
    CouplingGraph g(4, "two-path-rigged-4");
    g.addEdge(0, 1);
    g.addEdge(1, 3);
    g.addEdge(0, 2);
    g.addEdge(2, 3);
    EdgeProperties good;
    good.basis = BasisSpec{BasisKind::SqISwap};
    good.fidelity_2q = 0.999;
    Target target(std::move(g), good);
    EdgeProperties bad = good;
    bad.fidelity_2q = 0.6;
    target.setEdgeProperties(0, 2, bad);
    target.setEdgeProperties(2, 3, bad);
    return target;
}

/** Two sqrt(iSWAP) chiplets bridged by low-fidelity CX links. */
Target
chipletTarget()
{
    CouplingGraph graph(16, "chiplet-hetero-16");
    for (int base : {0, 8}) {
        for (int i = 0; i < 8; ++i) {
            graph.addEdge(base + i, base + (i + 1) % 8);
        }
        for (int i = 0; i < 4; ++i) {
            graph.addEdge(base + i, base + i + 4);
        }
    }
    graph.addEdge(3, 11);
    graph.addEdge(7, 15);

    EdgeProperties intra;
    intra.basis = BasisSpec{BasisKind::SqISwap};
    intra.fidelity_2q = 0.995;
    QubitProperties qubit;
    qubit.fidelity_1q = 0.9999;
    qubit.t2 = 400.0;
    Target target(std::move(graph), intra, qubit);

    EdgeProperties bridge;
    bridge.basis = BasisSpec{BasisKind::CNOT};
    bridge.fidelity_2q = 0.97;
    bridge.duration = 1.0;
    target.setEdgeProperties(3, 11, bridge);
    target.setEdgeProperties(7, 15, bridge);

    QubitProperties iface;
    iface.fidelity_1q = 0.999;
    iface.t2 = 150.0;
    target.setQubitProperties(3, iface);
    target.setQubitProperties(11, iface);
    return target;
}

void
expectSameMetrics(const TranspileMetrics &a, const TranspileMetrics &b,
                  const std::string &label)
{
    EXPECT_EQ(a.swaps_total, b.swaps_total) << label;
    EXPECT_DOUBLE_EQ(a.swaps_critical, b.swaps_critical) << label;
    EXPECT_EQ(a.ops_2q_pre, b.ops_2q_pre) << label;
    EXPECT_EQ(a.basis_2q_total, b.basis_2q_total) << label;
    EXPECT_DOUBLE_EQ(a.basis_2q_critical, b.basis_2q_critical) << label;
    EXPECT_DOUBLE_EQ(a.duration_total, b.duration_total) << label;
    EXPECT_DOUBLE_EQ(a.duration_critical, b.duration_critical) << label;
}

TEST(Target, PropertyLookupAndOverrides)
{
    Target target = chipletTarget();
    EXPECT_EQ(target.numQubits(), 16);
    EXPECT_EQ(target.name(), "chiplet-hetero-16");
    EXPECT_TRUE(target.isHeterogeneous());
    EXPECT_EQ(target.overriddenEdges(), 2u);

    // Intra-chiplet edges inherit the default; order is symmetric.
    EXPECT_EQ(target.edge(0, 1).basis.kind, BasisKind::SqISwap);
    EXPECT_DOUBLE_EQ(target.edge(1, 0).fidelity_2q, 0.995);
    // The bridge override applies in both orders.
    EXPECT_EQ(target.edge(3, 11).basis.kind, BasisKind::CNOT);
    EXPECT_EQ(target.edge(11, 3).basis.kind, BasisKind::CNOT);
    EXPECT_DOUBLE_EQ(target.edge(11, 3).fidelity_2q, 0.97);
    // Qubit overrides.
    EXPECT_DOUBLE_EQ(target.qubit(3).t2, 150.0);
    EXPECT_DOUBLE_EQ(target.qubit(4).t2, 400.0);

    // Unknown couplings and out-of-range qubits are rejected.
    EXPECT_THROW(target.edge(0, 9), SnailError);
    EXPECT_THROW(target.qubit(16), SnailError);
    EXPECT_THROW(target.setEdgeProperties(0, 9, EdgeProperties{}),
                 SnailError);
    EXPECT_THROW(target.setQubitProperties(-1, QubitProperties{}),
                 SnailError);

    // Pulse durations: basis default unless overridden.
    EXPECT_DOUBLE_EQ(target.edge(0, 1).pulseDuration(), 0.5);
    EXPECT_DOUBLE_EQ(target.edge(3, 11).pulseDuration(), 1.0);
}

TEST(Target, Eq12FidelityScaling)
{
    // A full-length pulse keeps the base fidelity; the n-root family
    // divides the infidelity by n (Eq. 12).
    const double base = 0.99;
    EXPECT_DOUBLE_EQ(
        basisPulseFidelity(BasisSpec{BasisKind::CNOT}, base), base);
    EXPECT_DOUBLE_EQ(
        basisPulseFidelity(BasisSpec{BasisKind::Sycamore}, base), base);
    EXPECT_DOUBLE_EQ(
        basisPulseFidelity(BasisSpec{BasisKind::ISwap}, base), base);
    EXPECT_DOUBLE_EQ(
        basisPulseFidelity(BasisSpec{BasisKind::SqISwap}, base),
        1.0 - (1.0 - base) / 2.0);
    EXPECT_THROW(basisPulseFidelity(BasisSpec{}, 0.0), SnailError);

    // targetFromBackend applies the scaling to the backend's basis.
    const Backend backend = makeBackend("tree-20", BasisKind::SqISwap);
    const Target target = targetFromBackend(backend, 0.99, 0.9999);
    EXPECT_EQ(target.name(), backend.name);
    EXPECT_DOUBLE_EQ(target.defaultEdge().fidelity_2q, 0.995);
    EXPECT_DOUBLE_EQ(target.defaultQubit().fidelity_1q, 0.9999);
    EXPECT_FALSE(target.isHeterogeneous());
}

TEST(Target, BuiltinRegistry)
{
    const std::vector<Target> targets = builtinTargets();
    EXPECT_EQ(targets.size(),
              fig13Backends().size() + fig14Backends().size());
    const Target tree = namedTarget("tree-20-sqiswap");
    EXPECT_EQ(tree.numQubits(), 20);
    EXPECT_EQ(tree.defaultBasis().kind, BasisKind::SqISwap);
    EXPECT_THROW(namedTarget("no-such-machine"), SnailError);
}

TEST(Target, JsonRoundTrip)
{
    const Target original = chipletTarget();
    const JsonValue json = targetToJson(original);
    const Target reloaded = targetFromJson(json);

    EXPECT_EQ(reloaded.name(), original.name());
    EXPECT_EQ(reloaded.numQubits(), original.numQubits());
    EXPECT_EQ(reloaded.graph().edges(), original.graph().edges());
    for (const auto &[a, b] : original.graph().edges()) {
        EXPECT_TRUE(reloaded.edge(a, b) == original.edge(a, b))
            << "edge (" << a << ", " << b << ")";
    }
    for (int q = 0; q < original.numQubits(); ++q) {
        EXPECT_TRUE(reloaded.qubit(q) == original.qubit(q)) << "qubit " << q;
    }
    // Serializing the reloaded target reproduces the document exactly.
    EXPECT_EQ(targetToJson(reloaded), json);
    // And the text form re-parses to the same document.
    EXPECT_EQ(JsonValue::parse(json.dump(2)), json);
}

TEST(Target, JsonRoundTripKeepsDurationSentinelUnderExplicitDefault)
{
    // Regression: an override edge using the basis-default duration
    // (sentinel -1) on a target whose default edge has an explicit
    // duration used to inherit that explicit value on reload,
    // silently doubling the edge's pulse time.
    CouplingGraph g(2, "sentinel");
    g.addEdge(0, 1);
    EdgeProperties slow;
    slow.basis = BasisSpec{BasisKind::SqISwap};
    slow.duration = 1.0; // explicit, non-basis-default
    Target target(std::move(g), slow);
    EdgeProperties fast;
    fast.basis = BasisSpec{BasisKind::SqISwap};
    fast.fidelity_2q = 0.9;
    fast.duration = -1.0; // basis default: 0.5
    target.setEdgeProperties(0, 1, fast);
    ASSERT_DOUBLE_EQ(target.edge(0, 1).pulseDuration(), 0.5);

    const Target reloaded = targetFromJson(targetToJson(target));
    EXPECT_DOUBLE_EQ(reloaded.edge(0, 1).pulseDuration(), 0.5);
    EXPECT_DOUBLE_EQ(reloaded.defaultEdge().pulseDuration(), 1.0);
}

TEST(Target, OptimisticSycEdgesDoNotShareCachedCounts)
{
    // Regression: the per-edge basis-count cache keyed on the basis
    // *name*, which is "syc" for both counting modes; two CX gates on
    // edges differing only in optimistic_syc must score 4 and 3.
    CouplingGraph g(3, "syc-mix");
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    BasisSpec syc{BasisKind::Sycamore};
    HeterogeneousBasis bases(g, syc);
    BasisSpec optimistic = syc;
    optimistic.optimistic_syc = true;
    bases.setEdgeBasis(1, 2, optimistic);

    Circuit c(3, "two-cx");
    c.append(gates::cx(), {0, 1});
    c.append(gates::cx(), {1, 2});
    const TranslationStats stats = heterogeneousTranslationStats(c, bases);
    EXPECT_EQ(stats.total_2q, 7u); // 4 (analytic) + 3 (optimistic)
}

TEST(Target, JsonFileIoAndValidation)
{
    const std::string path = "test_target_device.json";
    const Target original = riggedTwoPath();
    saveTargetFile(original, path);
    const Target loaded = loadTargetFile(path);
    EXPECT_EQ(loaded.name(), original.name());
    EXPECT_EQ(targetToJson(loaded), targetToJson(original));
    std::remove(path.c_str());

    EXPECT_THROW(loadTargetFile("definitely/not/here.json"), SnailError);

    // Schema validation: missing keys, bad ranges, malformed edges.
    EXPECT_THROW(targetFromJson(JsonValue::parse(R"({"edges": []})")),
                 SnailError);
    EXPECT_THROW(targetFromJson(JsonValue::parse(
                     R"({"qubits": 2, "edges": [[0]]})")),
                 SnailError);
    EXPECT_THROW(targetFromJson(JsonValue::parse(
                     R"({"qubits": 2, "edges": [[0, 5]]})")),
                 SnailError);
    EXPECT_THROW(
        targetFromJson(JsonValue::parse(
            R"({"qubits": 2,
                "edges": [{"a": 0, "b": 1, "fidelity_2q": 1.5}]})")),
        SnailError);
    EXPECT_THROW(targetFromJson(JsonValue::parse(
                     R"({"qubits": 0, "edges": []})")),
                 SnailError);
}

TEST(Target, RejectsDuplicateEdgeEntriesWithTypedError)
{
    // Regression: addEdge is idempotent, so a duplicate entry used to
    // collapse silently — and when both entries carried calibration the
    // last writer won.  Now any repeat, in either orientation or entry
    // form, is a DuplicateEdgeError naming the pair.
    const auto parse = [](const char *text) {
        return targetFromJson(JsonValue::parse(text));
    };
    try {
        parse(R"({"qubits": 3, "name": "dup",
                  "edges": [[0, 1], [1, 2], [1, 0]]})");
        FAIL() << "duplicate edge accepted";
    } catch (const DuplicateEdgeError &e) {
        EXPECT_EQ(e.deviceName(), "dup");
        EXPECT_EQ(e.qubitA(), 1);
        EXPECT_EQ(e.qubitB(), 0);
    }
    // A bare pair followed by a conflicting override object was the
    // worst case: the override silently rewrote the first entry.
    EXPECT_THROW(
        parse(R"({"qubits": 2,
                  "edges": [[0, 1],
                            {"a": 0, "b": 1, "fidelity_2q": 0.5}]})"),
        DuplicateEdgeError);

    // The typed error survives the file loader's path re-wrapping.
    const std::string path = "test_target_dup_edges.json";
    {
        std::ofstream out(path);
        out << R"({"qubits": 2, "edges": [[0, 1], [0, 1]]})";
    }
    try {
        loadTargetFile(path);
        std::remove(path.c_str());
        FAIL() << "duplicate edge accepted from file";
    } catch (const DuplicateEdgeError &e) {
        EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
        EXPECT_EQ(e.qubitA(), 0);
        EXPECT_EQ(e.qubitB(), 1);
    }
    std::remove(path.c_str());
}

TEST(Json, ParserCoversTheGrammar)
{
    const JsonValue doc = JsonValue::parse(
        R"({"s": "a\"b\\c\ndA", "n": -1.5e2, "t": true, "f": false,
            "z": null, "arr": [1, [2, 3], {"k": 4}], "empty": {}})");
    EXPECT_EQ(doc.at("s").asString(), "a\"b\\c\ndA");
    EXPECT_DOUBLE_EQ(doc.at("n").asNumber(), -150.0);
    EXPECT_TRUE(doc.at("t").asBool());
    EXPECT_FALSE(doc.at("f").asBool());
    EXPECT_TRUE(doc.at("z").isNull());
    EXPECT_EQ(doc.at("arr").asArray().size(), 3u);
    EXPECT_EQ(doc.at("arr").asArray()[1].asArray()[1].asInt(), 3);
    EXPECT_EQ(doc.at("arr").asArray()[2].at("k").asInt(), 4);
    EXPECT_TRUE(doc.at("empty").asObject().empty());

    // Compact and pretty dumps both re-parse to the same document.
    EXPECT_EQ(JsonValue::parse(doc.dump()), doc);
    EXPECT_EQ(JsonValue::parse(doc.dump(2)), doc);

    for (const char *bad :
         {"", "{", "[1,", "{\"a\" 1}", "tru", "\"unterminated",
          "[1] trailing", "{\"a\": 1,}", "nan"}) {
        EXPECT_THROW(JsonValue::parse(bad), SnailError) << bad;
    }
    EXPECT_THROW(JsonValue(true).asNumber(), SnailError);
    EXPECT_THROW(JsonValue(1.5).asInt(), SnailError);
    EXPECT_THROW(JsonValue("x").at("k"), SnailError);
}

TEST(Target, UniformTargetReproducesLegacyPipelinesBitForBit)
{
    // The acceptance criterion: a uniform Target must reproduce the
    // PR-1 (graph, basis) pipeline metrics exactly, across layouts,
    // routers, and devices.
    const BasisSpec basis{BasisKind::SqISwap};
    for (const char *topo : {"corral11-16", "tree-20", "heavy-hex-20"}) {
        const CouplingGraph graph = namedTopology(topo);
        const Target uniform = Target::uniform(graph, basis);
        for (const char *spec :
             {"dense,stochastic-route=6,basis=sqiswap",
              "vf2,sabre-route,elide,basis=sqiswap",
              "sabre-layout,lookahead-route,basis=sqiswap,score",
              "trivial,basic-route,basis=sqiswap"}) {
            for (const Circuit &circuit :
                 {qft(8), ghz(8), quantumVolume(8, 8, 5)}) {
                const std::string label = std::string(topo) + " " + spec +
                                          " " + circuit.name();
                const PassManager pm = passManagerFromSpec(spec);
                const TranspileResult legacy =
                    pm.run(circuit, graph, 37, basis);
                const TranspileResult via_target =
                    pm.run(circuit, uniform, 37);
                expectSameMetrics(legacy.metrics, via_target.metrics,
                                  label);
                EXPECT_EQ(legacy.routed.size(), via_target.routed.size())
                    << label;
                EXPECT_EQ(legacy.initial_layout.v2p(),
                          via_target.initial_layout.v2p())
                    << label;
                EXPECT_EQ(legacy.final_layout.v2p(),
                          via_target.final_layout.v2p())
                    << label;
            }
        }
    }

    // The transpile() shim stays equivalent to the Target path, too.
    TranspileOptions options;
    options.stochastic_trials = 6;
    options.basis = basis;
    options.seed = 37;
    const CouplingGraph graph = namedTopology("corral11-16");
    const TranspileResult shim = transpile(qft(8), graph, options);
    const TranspileResult via_target = passManagerFromOptions(options).run(
        qft(8), Target::uniform(graph, basis), options.seed);
    expectSameMetrics(shim.metrics, via_target.metrics, "transpile shim");
}

TEST(Target, NoiseRoutePrefersHighFidelityPath)
{
    // On the rigged diamond both paths have equal hop length, so a
    // distance-only router breaks the tie arbitrarily; noise-route
    // must put its SWAP on the high-fidelity 0-1-3 path, never
    // touching the lossy qubit 2 — for every seed.
    const Target rigged = riggedTwoPath();
    Circuit c(4, "far-pair");
    c.append(gates::cx(), {0, 3});

    for (unsigned long long seed = 1; seed <= 24; ++seed) {
        const TranspileResult r =
            passManagerFromSpec("trivial,noise-route").run(c, rigged, seed);
        EXPECT_EQ(r.metrics.swaps_total, 1u) << "seed " << seed;
        for (const auto &op : r.routed.instructions()) {
            for (Qubit q : op.qubits()) {
                EXPECT_NE(q, 2) << "seed " << seed
                                << ": routed through the lossy path";
            }
        }
        EXPECT_GT(r.properties.get("swaps_added"), 0.0);
        // The penalty actually paid is the good edge's, not the bad's.
        EXPECT_LT(r.properties.get("noise_route_penalty"),
                  3.0 * -std::log(0.9));
        // The routed circuit still computes the original unitary.
        Rng rng(seed);
        EXPECT_TRUE(routedCircuitEquivalent(c, r.routed,
                                            r.initial_layout.v2p(),
                                            r.final_layout.v2p(), 2, rng))
            << "seed " << seed;
    }

    // Spec round-trip including the weight argument — tiny weights
    // must survive (std::to_string's 6 decimals would collapse 1e-07
    // to "0").
    EXPECT_EQ(passManagerFromSpec("noise-route").spec(), "noise-route");
    EXPECT_EQ(passManagerFromSpec("noise-route=0.25").spec(),
              "noise-route=0.25");
    EXPECT_EQ(passManagerFromSpec("noise-route=1e-07").spec(),
              "noise-route=1e-07");
    EXPECT_EQ(passManagerFromSpec(
                  passManagerFromSpec("noise-route=1e-07").spec())
                  .spec(),
              "noise-route=1e-07");
    EXPECT_THROW(passManagerFromSpec("noise-route=x"), SnailError);
    EXPECT_THROW(passManagerFromSpec("noise-route=-1"), SnailError);
}

TEST(Target, NoiseRouteReducesToSabreOnUniformTargets)
{
    // With no calibration contrast every SWAP costs the same penalty,
    // so noise-route's choices must match plain sabre-route.
    const CouplingGraph graph = namedTopology("heavy-hex-20");
    const Target uniform =
        Target::uniform(graph, BasisSpec{BasisKind::SqISwap}, 0.995);
    for (unsigned long long seed : {3ULL, 11ULL}) {
        const TranspileResult sabre =
            passManagerFromSpec("dense,sabre-route").run(qft(10), uniform,
                                                         seed);
        const TranspileResult noise =
            passManagerFromSpec("dense,noise-route").run(qft(10), uniform,
                                                         seed);
        expectSameMetrics(sabre.metrics, noise.metrics,
                          "seed " + std::to_string(seed));
        EXPECT_EQ(sabre.final_layout.v2p(), noise.final_layout.v2p());
    }
}

TEST(Target, AutoBasisScoresPerEdgeOnHeterogeneousTargets)
{
    const Target chiplet = chipletTarget();
    const Circuit circuit = qft(12);
    const TranspileResult r =
        passManagerFromSpec("dense,sabre-route,basis=auto")
            .run(circuit, chiplet, 7);
    EXPECT_DOUBLE_EQ(r.properties.get("scored_hetero"), 1.0);

    // The scored totals equal an independent heterogeneous translation
    // of the routed circuit.
    const HeterogeneousBasis bases = chiplet.heterogeneousBasis();
    const TranslationStats stats =
        heterogeneousTranslationStats(r.routed, bases);
    EXPECT_EQ(r.metrics.basis_2q_total, stats.total_2q);
    EXPECT_DOUBLE_EQ(r.metrics.duration_total, stats.total_duration);
    EXPECT_DOUBLE_EQ(r.metrics.basis_2q_critical, stats.critical_2q);

    // On a uniform target, basis=auto is identical to naming the
    // default basis explicitly.
    const Target uniform = Target::uniform(namedTopology("corral11-16"),
                                           BasisSpec{BasisKind::SqISwap});
    const TranspileResult autod =
        passManagerFromSpec("dense,stochastic-route=6,basis=auto")
            .run(qft(8), uniform, 21);
    const TranspileResult named =
        passManagerFromSpec("dense,stochastic-route=6,basis=sqiswap")
            .run(qft(8), uniform, 21);
    expectSameMetrics(autod.metrics, named.metrics, "uniform auto");
    EXPECT_FALSE(autod.properties.contains("scored_hetero"));
}

TEST(Target, ScoreFidelityMatchesHandComputation)
{
    // Single CX on a two-qubit device: CX needs 2 sqrt(iSWAP) pulses,
    // so predicted fidelity = f2q^2 (no 1Q gates, no T2 set).
    CouplingGraph g(2, "pair");
    g.addEdge(0, 1);
    Target pair =
        Target::uniform(g, BasisSpec{BasisKind::SqISwap}, 0.99, 0.999);
    Circuit c(2, "one-cx");
    c.append(gates::cx(), {0, 1});
    const TranspileResult r =
        passManagerFromSpec("trivial,basic-route,score-fidelity")
            .run(c, pair, 1);
    EXPECT_NEAR(r.properties.get("fidelity_predicted"), 0.99 * 0.99,
                1e-12);
    EXPECT_NEAR(r.properties.get("fidelity_makespan"), 2 * 0.5, 1e-12);
    EXPECT_DOUBLE_EQ(r.properties.get("fidelity_1q_part"), 1.0);
    EXPECT_DOUBLE_EQ(r.properties.get("fidelity_idle_part"), 1.0);

    // Adding a 1Q gate multiplies in the qubit's fidelity_1q.
    Circuit c1(2, "h-cx");
    c1.append(gates::h(), {0});
    c1.append(gates::cx(), {0, 1});
    const TranspileResult r1 =
        passManagerFromSpec("trivial,basic-route,score-fidelity")
            .run(c1, pair, 1);
    EXPECT_NEAR(r1.properties.get("fidelity_predicted"),
                0.999 * 0.99 * 0.99, 1e-12);

    // T2 decay: the idle qubit of a three-qubit line decoheres while
    // the busy pair works.
    CouplingGraph line(3, "line");
    line.addEdge(0, 1);
    line.addEdge(1, 2);
    Target coherent =
        Target::uniform(line, BasisSpec{BasisKind::SqISwap}, 1.0, 1.0);
    QubitProperties leaky;
    leaky.fidelity_1q = 1.0;
    leaky.t2 = 10.0;
    coherent.setQubitProperties(2, leaky);
    Circuit c2(3, "busy-pair");
    c2.append(gates::cx(), {0, 1}); // 2 pulses * 0.5 = 1.0 time units
    c2.append(gates::h(), {2});     // marks qubit 2 as carrying state
    const TranspileResult r2 =
        passManagerFromSpec("trivial,basic-route,score-fidelity")
            .run(c2, coherent, 1);
    EXPECT_NEAR(r2.properties.get("fidelity_idle_part"),
                std::exp(-1.0 / 10.0), 1e-12);

    // Unrouted 2Q ops are rejected with a helpful error.
    Circuit far(3, "far");
    far.append(gates::cx(), {0, 2});
    EXPECT_THROW(
        passManagerFromSpec("score-fidelity").run(far, coherent, 1),
        SnailError);
}

TEST(Target, DisconnectedDeviceSurfacesTypedErrorMidRouting)
{
    // Routing across a split device hits CouplingGraph::distance on a
    // disconnected pair; the typed error (with pair and graph name)
    // must surface through the pass pipeline.
    CouplingGraph split(4, "split-device");
    split.addEdge(0, 1);
    split.addEdge(2, 3);
    const Target target = Target::uniform(split, BasisSpec{});
    Circuit c(4, "crossing");
    c.append(gates::cx(), {0, 3});
    for (const char *spec :
         {"trivial,basic-route", "trivial,sabre-route",
          "trivial,noise-route"}) {
        try {
            passManagerFromSpec(spec).run(c, target, 5);
            FAIL() << spec << " on a disconnected device must throw";
        } catch (const DisconnectedError &e) {
            EXPECT_EQ(e.graphName(), "split-device") << spec;
        }
    }
}

TEST(Target, RegistersNoiseAwarePasses)
{
    std::vector<std::string> names;
    for (const auto &row : registeredPasses()) {
        names.push_back(row.name);
    }
    for (const char *expected : {"noise-route", "score-fidelity"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), expected),
                  names.end())
            << expected << " not registered";
    }
    // basis=auto round-trips through the spec grammar.
    EXPECT_EQ(passManagerFromSpec("vf2,noise-route,basis=auto,"
                                  "score-fidelity")
                  .spec(),
              "vf2,noise-route,basis=auto,score-fidelity");
}

} // namespace
} // namespace snail
