/**
 * @file
 * Tests for trailing-SWAP elision.
 *
 * The pass may only remove SWAPs that amount to an output relabeling;
 * the simulation-based routed-circuit equivalence check (which consumes
 * the final layout) is the oracle that the fold-in is correct.
 */

#include <gtest/gtest.h>

#include "circuits/circuits.hpp"
#include "common/rng.hpp"
#include "sim/equivalence.hpp"
#include "topology/registry.hpp"
#include "transpiler/pipeline.hpp"

namespace snail
{
namespace
{

/** Route a circuit on a line device with the deterministic router. */
RoutingResult
routeOnLine(const Circuit &circuit, int line_size)
{
    CouplingGraph line(line_size, "line");
    for (int i = 0; i + 1 < line_size; ++i) {
        line.addEdge(i, i + 1);
    }
    Rng rng(1);
    return BasicRouter().route(circuit, line,
                               Layout::identity(circuit.numQubits(),
                                                line_size),
                               rng);
}

TEST(SwapElision, PureTrailingSwapsVanish)
{
    // A circuit that ends in explicit SWAPs (QFT's reversal) routed on
    // a line: the reversal SWAPs at the tail are pure output wiring.
    Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.swap(1, 2);
    c.swap(0, 1);
    RoutingResult routed = routeOnLine(c, 3);
    const Circuit original_routed = routed.circuit;
    const Layout original_final = routed.final_layout;

    const std::size_t elided = elideTrailingSwaps(routed);
    EXPECT_GE(elided, 2u);
    EXPECT_EQ(routed.circuit.countKind(GateKind::Swap),
              original_routed.countKind(GateKind::Swap) - elided);

    // The elided circuit with the updated final layout still computes
    // the original circuit.
    Rng rng(5);
    EXPECT_TRUE(routedCircuitEquivalent(c, routed.circuit,
                                        routed.initial_layout.v2p(),
                                        routed.final_layout.v2p(), 4,
                                        rng));
    // And the layout actually changed (the permutation moved into it).
    EXPECT_NE(routed.final_layout.v2p(), original_final.v2p());
}

TEST(SwapElision, InteriorSwapsSurvive)
{
    // SWAPs needed before later gates must not be touched.
    Circuit c(3);
    c.cx(0, 2); // forces routing SWAPs on a line
    c.cx(0, 1); // touches the qubits afterwards
    RoutingResult routed = routeOnLine(c, 3);
    // Append nothing: any SWAP before the final cx is interior except
    // possibly ones after the last gate.
    const std::size_t swaps_before =
        routed.circuit.countKind(GateKind::Swap);
    ASSERT_GE(swaps_before, 1u);
    elideTrailingSwaps(routed);
    Rng rng(7);
    EXPECT_TRUE(routedCircuitEquivalent(c, routed.circuit,
                                        routed.initial_layout.v2p(),
                                        routed.final_layout.v2p(), 4,
                                        rng));
}

TEST(SwapElision, NoTrailingSwapsIsNoOp)
{
    Circuit c(2);
    c.cx(0, 1);
    RoutingResult routed = routeOnLine(c, 2);
    const auto v2p = routed.final_layout.v2p();
    EXPECT_EQ(elideTrailingSwaps(routed), 0u);
    EXPECT_EQ(routed.final_layout.v2p(), v2p);
}

TEST(SwapElision, QftReversalOnEveryTopology)
{
    // QFT ends in a full register reversal: a large elision target.
    for (const char *topo : {"square-16", "tree-20", "hypercube-16"}) {
        const CouplingGraph device = namedTopology(topo);
        const Circuit c = qft(8);
        TranspileOptions plain;
        plain.seed = 9;
        TranspileOptions elide = plain;
        elide.elide_trailing_swaps = true;

        const TranspileResult with = transpile(c, device, plain);
        const TranspileResult without = transpile(c, device, elide);
        EXPECT_LT(without.metrics.swaps_total, with.metrics.swaps_total)
            << topo;

        Rng rng(11);
        EXPECT_TRUE(routedCircuitEquivalent(
            c, without.routed, without.initial_layout.v2p(),
            without.final_layout.v2p(), 3, rng))
            << topo;
    }
}

TEST(SwapElision, EquivalenceOnRandomWorkloads)
{
    for (unsigned seed : {1u, 2u, 3u, 4u}) {
        const Circuit c = quantumVolume(6, 6, seed);
        const CouplingGraph device = namedTopology("square-16");
        TranspileOptions opts;
        opts.seed = seed;
        opts.elide_trailing_swaps = true;
        const TranspileResult r = transpile(c, device, opts);
        Rng rng(seed);
        EXPECT_TRUE(routedCircuitEquivalent(
            c, r.routed, r.initial_layout.v2p(), r.final_layout.v2p(),
            3, rng))
            << "seed " << seed;
    }
}

} // namespace
} // namespace snail
