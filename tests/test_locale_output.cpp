/**
 * @file
 * Locale-independence regression tests for the *writers*: QASM export,
 * table/CSV reports.
 *
 * PR 4 made parsing (QASM literals, pass arguments, JSON) immune to
 * the C locale; these tests cover the opposite direction.  iostream
 * numeric output honors std::locale::global — a stream constructed
 * after std::locale::global(de_DE) prints 0.5 as "0,5" and 1234 as
 * "1.234" — so every machine-readable writer must format numbers via
 * std::to_chars (shortestDouble / fixedDouble / std::to_string)
 * instead of streaming them.  Each test sets the global C++ locale to
 * a comma-decimal, digit-grouping one and asserts the output is
 * byte-identical to the "C"-locale output.
 *
 * Skips gracefully when no such locale is generated (CI installs
 * de_DE.UTF-8; see .github/workflows/ci.yml).
 */

#include <gtest/gtest.h>

#include <limits>
#include <locale>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "ir/circuit.hpp"
#include "ir/qasm.hpp"
#include "ir/qasm_parser.hpp"

namespace snail
{
namespace
{

/**
 * RAII guard installing a comma-decimal, digit-grouping locale as the
 * *global C++ locale* (std::locale::global, which is what freshly
 * constructed iostreams imbue — the C-locale guard in
 * locale_guard.hpp does not cover this path).  valid() reports
 * whether one was actually available.
 */
class GlobalCommaLocale
{
  public:
    GlobalCommaLocale() : _previous(std::locale())
    {
        for (const char *name :
             {"de_DE.UTF-8", "de_DE.utf8", "fr_FR.UTF-8", "fr_FR.utf8",
              "it_IT.UTF-8", "nl_NL.UTF-8"}) {
            try {
                std::locale candidate(name);
                // Trust but verify: the locale must really format with
                // a decimal comma through iostreams.
                std::ostringstream probe;
                probe.imbue(candidate);
                probe << 0.5;
                if (probe.str().find(',') == std::string::npos) {
                    continue;
                }
                std::locale::global(candidate);
                _valid = true;
                return;
            } catch (const std::runtime_error &) {
                continue;
            }
        }
    }

    ~GlobalCommaLocale() { std::locale::global(_previous); }

    GlobalCommaLocale(const GlobalCommaLocale &) = delete;
    GlobalCommaLocale &operator=(const GlobalCommaLocale &) = delete;

    bool valid() const { return _valid; }

  private:
    std::locale _previous;
    bool _valid = false;
};

TEST(LocaleOutput, QasmExportIsLocaleIndependent)
{
    // 1234 qubits so a grouping locale would print "q[1.234]"; a real
    // parameter so a comma locale would print "rz(0,5)".
    Circuit c(1234, "locale-probe");
    c.rz(0.5, 0);
    c.rz(0.1 + 0.2, 1233); // non-terminating binary fraction
    c.cx(0, 1233);
    const std::string reference = toQasm(c);

    GlobalCommaLocale guard;
    if (!guard.valid()) {
        GTEST_SKIP() << "no comma-decimal locale installed";
    }
    const std::string under_locale = toQasm(c);
    EXPECT_EQ(under_locale, reference);
    EXPECT_NE(under_locale.find("qreg q[1234];"), std::string::npos);
    EXPECT_NE(under_locale.find("rz(0.5)"), std::string::npos);
    EXPECT_EQ(under_locale.find(','), under_locale.find(", "))
        << "every comma must be a qubit-list separator, not a decimal";

    // And the export still round-trips through the (locale-proof)
    // parser while the global locale is hostile.
    const QasmParseResult back = parseQasm(under_locale);
    ASSERT_EQ(back.circuit.size(), c.size());
    EXPECT_DOUBLE_EQ(back.circuit.instructions()[0].gate().params()[0],
                     0.5);
    EXPECT_DOUBLE_EQ(back.circuit.instructions()[1].gate().params()[0],
                     0.1 + 0.2);
}

TEST(LocaleOutput, TableAndCsvReportsAreLocaleIndependent)
{
    TableWriter reference({"metric", "value", "count"});
    reference.addRow({"fidelity", TableWriter::num(0.997512, 4),
                      TableWriter::count(1234567.0)});
    reference.addRow({"duration", TableWriter::num(1234.5, 2),
                      TableWriter::count(9.0)});
    std::ostringstream ref_table;
    std::ostringstream ref_csv;
    reference.print(ref_table);
    reference.printCsv(ref_csv);

    GlobalCommaLocale guard;
    if (!guard.valid()) {
        GTEST_SKIP() << "no comma-decimal locale installed";
    }
    EXPECT_EQ(TableWriter::num(0.997512, 4), "0.9975");
    EXPECT_EQ(TableWriter::num(1234.5, 2), "1234.50");
    EXPECT_EQ(TableWriter::count(1234567.0), "1234567");

    TableWriter hostile({"metric", "value", "count"});
    hostile.addRow({"fidelity", TableWriter::num(0.997512, 4),
                    TableWriter::count(1234567.0)});
    hostile.addRow({"duration", TableWriter::num(1234.5, 2),
                    TableWriter::count(9.0)});
    std::ostringstream got_table;
    std::ostringstream got_csv;
    hostile.print(got_table);
    hostile.printCsv(got_csv);
    EXPECT_EQ(got_table.str(), ref_table.str());
    EXPECT_EQ(got_csv.str(), ref_csv.str());
}

TEST(LocaleOutput, FixedDoubleMatchesCLocaleFixedNotation)
{
    EXPECT_EQ(fixedDouble(0.0, 2), "0.00");
    EXPECT_EQ(fixedDouble(-1.25, 3), "-1.250");
    EXPECT_EQ(fixedDouble(1234.5, 0), "1234");  // round-half-to-even
    EXPECT_EQ(fixedDouble(0.125, 2), "0.12");   // round-half-to-even
    EXPECT_THROW(fixedDouble(std::numeric_limits<double>::infinity(), 2),
                 SnailError);
}

} // namespace
} // namespace snail
