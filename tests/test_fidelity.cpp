/**
 * @file
 * Unit tests for the decoherence-scaled fidelity model (Eqs. 12/13) and a
 * reduced-size run of the Fig. 15 n-th-root study.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "fidelity/model.hpp"
#include "fidelity/nroot_study.hpp"

namespace snail
{
namespace
{

TEST(Model, Eq12ScalesInfidelityLinearly)
{
    // Paper example: a 90%-fidelity iSWAP gives a 95% sqrt(iSWAP).
    EXPECT_DOUBLE_EQ(scaledBasisFidelity(0.90, 2.0), 0.95);
    EXPECT_DOUBLE_EQ(scaledBasisFidelity(0.99, 1.0), 0.99);
    EXPECT_NEAR(scaledBasisFidelity(0.99, 4.0), 0.9975, 1e-12);
    EXPECT_DOUBLE_EQ(scaledBasisFidelity(1.0, 3.0), 1.0);
    EXPECT_THROW(scaledBasisFidelity(1.2, 2.0), SnailError);
    EXPECT_THROW(scaledBasisFidelity(0.9, 0.5), SnailError);
}

TEST(Model, TotalFidelityMultiplies)
{
    EXPECT_NEAR(totalFidelity(0.999, 0.99, 3), 0.999 * std::pow(0.99, 3),
                1e-15);
    EXPECT_DOUBLE_EQ(totalFidelity(1.0, 1.0, 100), 1.0);
}

TEST(Model, BestTotalFidelityTradesOffKAgainstFd)
{
    // More gates improve Fd but cost decoherence; Eq. 13 picks the knee.
    const std::vector<DecompositionPoint> profile = {
        {2, 0.95},   // cheap but sloppy
        {3, 0.9999}, // nearly exact
        {4, 1.0},    // exact, one extra gate
    };
    int best_k = 0;
    const double ft = bestTotalFidelity(profile, 0.99, &best_k);
    // k=3: 0.9999 * 0.99^3 = 0.97020...; k=4: 1.0 * 0.99^4 = 0.96059...
    EXPECT_EQ(best_k, 3);
    EXPECT_NEAR(ft, 0.9999 * std::pow(0.99, 3), 1e-12);

    // With a perfect basis the exact template wins.
    bestTotalFidelity(profile, 1.0, &best_k);
    EXPECT_EQ(best_k, 4);
}

TEST(Model, EmptyProfileYieldsZero)
{
    EXPECT_DOUBLE_EQ(bestTotalFidelity({}, 0.99), 0.0);
}

/** A reduced Fig. 15 study shared across the assertions below. */
const NRootStudyResult &
smallStudy()
{
    static const NRootStudyResult result = [] {
        NRootStudyOptions opts;
        opts.roots = {2, 3, 4};
        opts.k_min = 2;
        opts.k_max = 5;
        opts.samples = 8;
        // This seed's Haar stream includes 3-use sqrt(iSWAP) classes, so
        // the k = 2 plateau of Fig. 15 is visible even at reduced size.
        opts.seed = 2;
        opts.optimizer.restarts = 3;
        opts.optimizer.max_iterations = 600;
        return runNRootStudy(opts);
    }();
    return result;
}

TEST(NRootStudy, SqrtIswapConvergesAtThree)
{
    // Fig. 15 top-left: sqrt(iSWAP) reaches near-exact decomposition at
    // k = 3 (the analytic bound) and not at k = 2 for generic targets.
    const auto &study = smallStudy();
    EXPECT_EQ(study.minimalK(0, 1e-6), 3);
    EXPECT_GT(study.averageInfidelity(0, 2), 1e-4);
    EXPECT_LT(study.averageInfidelity(0, 3), 1e-7);
    EXPECT_LT(study.averageInfidelity(0, 4), 1e-7);
}

TEST(NRootStudy, SmallerFractionsNeedMoreGatesButLessTime)
{
    const auto &study = smallStudy();
    const int k2 = study.minimalK(0, 1e-6); // n = 2
    const int k3 = study.minimalK(1, 1e-6); // n = 3
    const int k4 = study.minimalK(2, 1e-6); // n = 4
    ASSERT_GT(k2, 0);
    ASSERT_GT(k3, 0);
    ASSERT_GT(k4, 0);
    EXPECT_LE(k2, k3);
    EXPECT_LE(k3, k4);
    // Fig. 15 top-right: total pulse duration k/n still shrinks.
    EXPECT_LT(study.pulseDuration(1, k3), study.pulseDuration(0, k2));
    EXPECT_LE(study.pulseDuration(2, k4), study.pulseDuration(1, k3));
}

TEST(NRootStudy, TotalFidelityImprovesWithFinerRoots)
{
    // Fig. 15 bottom at Fb(iSWAP) = 0.99: finer roots give higher Ft.
    const auto &study = smallStudy();
    const double ft2 = study.averageTotalFidelity(0, 0.99);
    const double ft3 = study.averageTotalFidelity(1, 0.99);
    const double ft4 = study.averageTotalFidelity(2, 0.99);
    EXPECT_GT(ft3, ft2);
    EXPECT_GT(ft4, ft2);
    // Headline claim territory: the 4th root cuts infidelity vs sqrt by
    // a noticeable fraction (paper: ~25%).
    const double reduction = 1.0 - (1.0 - ft4) / (1.0 - ft2);
    EXPECT_GT(reduction, 0.10);
    EXPECT_LT(reduction, 0.45);
}

TEST(NRootStudy, PerfectBasisPrefersExactTemplates)
{
    const auto &study = smallStudy();
    // With a perfect basis gate Ft -> Fd(max k) ~ 1.
    EXPECT_GT(study.averageTotalFidelity(0, 1.0), 1.0 - 1e-6);
}

} // namespace
} // namespace snail
