/**
 * @file
 * Unit tests for the decomposition engines: full KAK with explicit local
 * factors, NuOp template optimization (Eq. 10/11 of the paper), and
 * analytic-count basis synthesis verified by simulation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "decomp/kak.hpp"
#include "decomp/nuop.hpp"
#include "decomp/synthesis.hpp"
#include "linalg/random_unitary.hpp"
#include "sim/unitary_builder.hpp"

namespace snail
{
namespace
{

TEST(Kak, ReconstructsRandomUnitaries)
{
    Rng rng(50);
    for (int i = 0; i < 20; ++i) {
        const Matrix u = haarUnitary(4, rng);
        const KakDecomposition kak = kakDecompose(u);
        const Matrix rebuilt =
            (kron(kak.after0, kak.after1) *
             gates::canonical(kak.a, kak.b, kak.c).matrix() *
             kron(kak.before0, kak.before1));
        EXPECT_TRUE(equalUpToGlobalPhase(rebuilt, u, 1e-6))
            << "iteration " << i;
    }
}

TEST(Kak, LocalFactorsAreUnitary)
{
    Rng rng(51);
    const Matrix u = haarUnitary(4, rng);
    const KakDecomposition kak = kakDecompose(u);
    EXPECT_TRUE(kak.before0.isUnitary(1e-7));
    EXPECT_TRUE(kak.before1.isUnitary(1e-7));
    EXPECT_TRUE(kak.after0.isUnitary(1e-7));
    EXPECT_TRUE(kak.after1.isUnitary(1e-7));
}

TEST(Kak, CircuitMatchesUnitary)
{
    Rng rng(52);
    for (int i = 0; i < 10; ++i) {
        const Matrix u = haarUnitary(4, rng);
        const Circuit c = kakToCircuit(kakDecompose(u));
        EXPECT_TRUE(equalUpToGlobalPhase(circuitUnitary(c), u, 1e-6));
    }
}

TEST(Kak, CnotHasCnotClassCoordinates)
{
    const KakDecomposition kak = kakDecompose(gates::cx().matrix());
    const WeylCoords w = kak.coordinates();
    EXPECT_NEAR(w.a, M_PI / 4.0, 1e-8);
    EXPECT_NEAR(w.b, 0.0, 1e-8);
    EXPECT_NEAR(w.c, 0.0, 1e-8);
}

TEST(NuOp, ZeroLayerReproducesLocals)
{
    Rng rng(53);
    const Matrix u = kron(haarUnitary(2, rng), haarUnitary(2, rng));
    const NuOpResult r = nuopDecompose(u, gates::sqiswap(), 0);
    EXPECT_LT(r.infidelity, 1e-9);
}

TEST(NuOp, CnotNeedsTwoSqiswap)
{
    // k = 1 cannot represent CNOT; k = 2 is exact (Observation 1).
    NuOpOptions opts;
    opts.restarts = 4;
    const Matrix cx = gates::cx().matrix();
    const NuOpResult r1 = nuopDecompose(cx, gates::sqiswap(), 1, opts);
    EXPECT_GT(r1.infidelity, 1e-3);
    const NuOpResult r2 = nuopDecompose(cx, gates::sqiswap(), 2, opts);
    EXPECT_LT(r2.infidelity, 1e-8);
}

TEST(NuOp, SwapNeedsThreeSqiswap)
{
    NuOpOptions opts;
    opts.restarts = 4;
    const Matrix sw = gates::swapGate().matrix();
    const NuOpResult r2 = nuopDecompose(sw, gates::sqiswap(), 2, opts);
    EXPECT_GT(r2.infidelity, 1e-3);
    const NuOpResult r3 = nuopDecompose(sw, gates::sqiswap(), 3, opts);
    EXPECT_LT(r3.infidelity, 1e-8);
}

TEST(NuOp, HaarTargetsConvergeAtAnalyticCount)
{
    Rng rng(54);
    NuOpOptions opts;
    opts.restarts = 6;
    for (int i = 0; i < 5; ++i) {
        const Matrix u = haarUnitary(4, rng);
        const int k = sqiswapCount(weylCoordinates(u));
        opts.seed = 1000 + static_cast<unsigned long long>(i);
        const NuOpResult r = nuopDecompose(u, gates::sqiswap(), k, opts);
        EXPECT_LT(r.infidelity, 1e-7) << "iteration " << i << " k=" << k;
    }
}

TEST(NuOp, CircuitMatchesAchievedUnitary)
{
    Rng rng(55);
    const Matrix u = haarUnitary(4, rng);
    const int k = sqiswapCount(weylCoordinates(u));
    const NuOpResult r = nuopDecompose(u, gates::sqiswap(), k);
    const Circuit c = nuopToCircuit(r, gates::sqiswap());
    EXPECT_EQ(c.countKind(GateKind::SqISwap), static_cast<std::size_t>(k));
    const Matrix cu = circuitUnitary(c);
    // infidelity f allows entrywise deviation ~sqrt(8 f), so compare by
    // trace fidelity rather than entrywise closeness.
    EXPECT_GT(traceFidelity(cu, u), 1.0 - 1e-6);
}

TEST(NuOp, AdaptiveFindsMinimalK)
{
    const Matrix cx = gates::cx().matrix();
    NuOpOptions opts;
    opts.restarts = 4;
    const NuOpResult r = nuopDecomposeAdaptive(cx, gates::sqiswap(), 1, 3,
                                               opts);
    EXPECT_EQ(r.k, 2);
    EXPECT_LT(r.infidelity, 1e-8);
}

TEST(NuOp, FractionalRootTemplateNeedsMoreApplications)
{
    // 3rd-root iSWAP: CNOT cannot be reached with 2 applications (total
    // interaction strength too small) but converges by k = 4.
    NuOpOptions opts;
    opts.restarts = 6;
    const Matrix cx = gates::cx().matrix();
    const NuOpResult r2 = nuopDecompose(cx, gates::nrootIswap(3.0), 2, opts);
    EXPECT_GT(r2.infidelity, 1e-3);
    const NuOpResult r4 = nuopDecompose(cx, gates::nrootIswap(3.0), 4, opts);
    EXPECT_LT(r4.infidelity, 1e-7);
}

TEST(Synthesis, LocalTargets)
{
    Rng rng(56);
    const Matrix u = kron(haarUnitary(2, rng), haarUnitary(2, rng));
    const Circuit c = synthesizeLocal(u);
    EXPECT_EQ(c.countTwoQubit(), 0u);
    EXPECT_TRUE(equalUpToGlobalPhase(circuitUnitary(c), u, 1e-7));
}

TEST(Synthesis, CnotBasisUsesAnalyticCounts)
{
    const BasisSpec cx_basis{BasisKind::CNOT};
    // SWAP: exactly 3 CNOTs.
    const SynthesisResult sw =
        synthesizeInBasis(gates::swapGate().matrix(), cx_basis);
    EXPECT_EQ(sw.basis_uses, 3);
    EXPECT_GT(traceFidelity(circuitUnitary(sw.circuit),
                            gates::swapGate().matrix()),
              1.0 - 1e-6);
    // CPhase: 2 CNOTs.
    const SynthesisResult cp =
        synthesizeInBasis(gates::cphase(0.7).matrix(), cx_basis);
    EXPECT_EQ(cp.basis_uses, 2);
    EXPECT_GT(traceFidelity(circuitUnitary(cp.circuit),
                            gates::cphase(0.7).matrix()),
              1.0 - 1e-6);
}

TEST(Synthesis, SqiswapBasisRoundTrip)
{
    Rng rng(57);
    const BasisSpec sq{BasisKind::SqISwap};
    const Matrix u = haarUnitary(4, rng);
    const SynthesisResult r = synthesizeInBasis(u, sq);
    EXPECT_LE(r.basis_uses, 3);
    EXPECT_GT(traceFidelity(circuitUnitary(r.circuit), u), 1.0 - 1e-6);
}

TEST(Synthesis, IdentityClassNeedsNoBasisGates)
{
    Rng rng(58);
    const Matrix local = kron(haarUnitary(2, rng), haarUnitary(2, rng));
    const SynthesisResult r =
        synthesizeInBasis(local, BasisSpec{BasisKind::CNOT});
    EXPECT_EQ(r.basis_uses, 0);
}

} // namespace
} // namespace snail
