/**
 * @file
 * Boundary-condition and failure-injection tests across modules: empty
 * and degenerate inputs, invalid construction parameters, and limits.
 */

#include <gtest/gtest.h>

#include "circuits/circuits.hpp"
#include "common/error.hpp"
#include "ir/dag.hpp"
#include "sim/statevector.hpp"
#include "topology/builders.hpp"
#include "transpiler/pipeline.hpp"

namespace snail
{
namespace
{

TEST(Edges, EmptyCircuitMetricsAreZero)
{
    Circuit c(3, "empty");
    EXPECT_EQ(c.countTwoQubit(), 0u);
    EXPECT_DOUBLE_EQ(c.twoQubitDepth(), 0.0);
    EXPECT_TRUE(c.activeQubits().empty());
    const auto layers = asapLayers(c);
    EXPECT_TRUE(layers.empty());
}

TEST(Edges, FrontierOnEmptyCircuitIsDone)
{
    Circuit c(2);
    DependencyFrontier frontier(c);
    EXPECT_TRUE(frontier.done());
    EXPECT_TRUE(frontier.ready().empty());
    EXPECT_TRUE(frontier.lookahead(5).empty());
}

TEST(Edges, LookaheadZeroHorizon)
{
    Circuit c(2);
    c.cx(0, 1);
    c.cx(0, 1);
    DependencyFrontier frontier(c);
    EXPECT_TRUE(frontier.lookahead(0).empty());
}

TEST(Edges, SingleQubitCircuitRejectsTwoQubitGates)
{
    Circuit c(1);
    c.h(0);
    EXPECT_THROW(c.cx(0, 0), SnailError);
}

TEST(Edges, StatevectorBounds)
{
    EXPECT_THROW(Statevector(0), SnailError);
    EXPECT_THROW(Statevector(25), SnailError);
    EXPECT_THROW(Statevector(2, 4), SnailError);
    Statevector sv(2);
    EXPECT_THROW(sv.applyOneQubit(Matrix::identity(2), 2), SnailError);
    EXPECT_THROW(sv.applyTwoQubit(Matrix::identity(4), 0, 0), SnailError);
}

TEST(Edges, CorralParameterValidation)
{
    EXPECT_THROW(corral(2, 1, 1), SnailError);
    EXPECT_THROW(corral(8, 0, 1), SnailError);
    EXPECT_THROW(corral(8, 1, 8), SnailError);
    EXPECT_NO_THROW(corral(3, 1, 2));
}

TEST(Edges, TrimValidation)
{
    const CouplingGraph g = squareLattice(3, 3);
    EXPECT_THROW(g.trimToSize(0), SnailError);
    EXPECT_THROW(g.trimToSize(10), SnailError);
    // Trimming a disconnected graph beyond the reachable component fails.
    CouplingGraph disc(4);
    disc.addEdge(0, 1);
    disc.addEdge(2, 3);
    EXPECT_THROW(disc.trimToSize(3, 0), SnailError);
    EXPECT_NO_THROW(disc.trimToSize(2, 0));
}

TEST(Edges, TreeLevelBounds)
{
    EXPECT_THROW(modularTree(0), SnailError);
    EXPECT_THROW(modularTree(6), SnailError);
    EXPECT_EQ(modularTree(1).numQubits(), 4);
}

TEST(Edges, HypercubeBounds)
{
    EXPECT_THROW(hypercube(0), SnailError);
    EXPECT_THROW(incompleteHypercube(1), SnailError);
    EXPECT_EQ(incompleteHypercube(2).numQubits(), 2);
    EXPECT_EQ(incompleteHypercube(2).edgeCount(), 1u);
}

TEST(Edges, BenchmarkWidthValidation)
{
    EXPECT_THROW(quantumVolume(1), SnailError);
    EXPECT_THROW(ghz(1), SnailError);
    EXPECT_THROW(cdkmAdder(3), SnailError);
    EXPECT_THROW(timHamiltonian(4, 0), SnailError);
}

TEST(Edges, TranspileRejectsOversizedCircuit)
{
    const Circuit c = ghz(20);
    const CouplingGraph g = squareLattice(4, 4);
    TranspileOptions opts;
    EXPECT_THROW(transpile(c, g, opts), SnailError);
}

TEST(Edges, MinimalTwoQubitTranspile)
{
    // Smallest interesting case: 2-qubit circuit on a 2-qubit device.
    Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    CouplingGraph g(2, "pair");
    g.addEdge(0, 1);
    TranspileOptions opts;
    const TranspileResult r = transpile(c, g, opts);
    EXPECT_EQ(r.metrics.swaps_total, 0u);
    EXPECT_EQ(r.metrics.basis_2q_total, 1u);
}

} // namespace
} // namespace snail
