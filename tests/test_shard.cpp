/**
 * @file
 * Adversarial tests for distributed sweep sharding (explore/shard.hpp):
 * the shard-function partition property over randomized specs (seeded,
 * replayable via SNAILQC_TEST_SEED), kill/resume fault injection on a
 * shard checkpoint, exactly-once merge validation with typed errors
 * (missing / duplicated / foreign / wrong-spec points), the
 * loadCheckpoint duplicate-point regression, and cross-configuration
 * byte-identity: a merged N-shard run's reports equal a single-process
 * run's, byte for byte, for mixed thread counts, warm persistent
 * caches, and the full paper-fig13 spec at N = 2 and 7.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "explore/cache_store.hpp"
#include "explore/checkpoint.hpp"
#include "explore/engine.hpp"
#include "explore/report.hpp"
#include "explore/shard.hpp"

namespace snail
{
namespace
{

namespace fs = std::filesystem;

/** The cheap 3-circuit x 2-target spec most shard tests sweep. */
SweepSpec
shardSpec()
{
    SweepSpec spec;
    spec.name = "test-shard";
    spec.seed = 11;
    spec.circuits.push_back(CircuitSpec{"ghz", {8}, ""});
    spec.circuits.push_back(CircuitSpec{"qft", {8}, ""});
    spec.circuits.push_back(CircuitSpec{"qaoa", {8}, ""});
    TargetSpec square;
    square.topology = "square-16";
    square.basis = "cx";
    spec.targets.push_back(std::move(square));
    TargetSpec corral;
    corral.target = "corral11-16-sqiswap";
    spec.targets.push_back(std::move(corral));
    spec.pipelines.push_back("dense,stochastic-route=6");
    return spec;
}

std::string
csvOf(const SweepRun &run)
{
    std::ostringstream os;
    writeSweepCsv(os, run);
    return os.str();
}

std::string
jsonOf(const SweepRun &run)
{
    std::ostringstream os;
    writeSweepJson(os, run);
    return os.str();
}

/** Fresh per-test scratch path under the gtest tmpdir. */
std::string
scratch(const std::string &name)
{
    const std::string path = testing::TempDir() + name;
    fs::remove_all(path);
    return path;
}

std::vector<std::string>
readLines(const std::string &path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
        lines.push_back(line);
    }
    return lines;
}

/**
 * Simulate a kill mid-write: keep the first `keep` lines plus half of
 * the next one (the torn tail every checkpoint consumer must skip).
 */
void
truncateMidLine(const std::string &path, std::size_t keep)
{
    const std::vector<std::string> lines = readLines(path);
    ASSERT_GT(lines.size(), keep);
    std::ofstream out(path, std::ios::trunc);
    for (std::size_t i = 0; i < keep; ++i) {
        out << lines[i] << '\n';
    }
    out << lines[keep].substr(0, lines[keep].size() / 2);
}

/** Evaluate one shard of `spec` into a fresh checkpoint file. */
SweepRun
runShard(const SweepSpec &spec, unsigned index, unsigned count,
         const std::string &checkpoint, unsigned threads = 0,
         CacheStore *store = nullptr, bool resume = false)
{
    EngineOptions options;
    options.shard_index = index;
    options.shard_count = count;
    options.checkpoint_path = checkpoint;
    options.threads = threads;
    options.cache_store = store;
    options.resume = resume;
    return runSweep(spec, options);
}

TEST(Shard, ParseShardSliceValidatesShape)
{
    const ShardSlice ok = parseShardSlice("2/7");
    EXPECT_EQ(ok.index, 2u);
    EXPECT_EQ(ok.count, 7u);
    EXPECT_EQ(parseShardSlice("0/1").count, 1u);

    for (const std::string bad : {"", "3", "/3", "3/", "3/3", "4/3",
                                  "a/3", "1/b", "-1/3", "1/0", "1//2"}) {
        EXPECT_THROW(parseShardSlice(bad), SnailError) << "'" << bad << "'";
    }
}

TEST(Shard, PointSetHashIsOrderIndependentNotDuplicateBlind)
{
    std::vector<CacheKey> keys = {CacheKey{1, 2, "dense", 3},
                                  CacheKey{4, 5, "vf2", 6},
                                  CacheKey{7, 8, "dense", 9}};
    const unsigned long long forward = pointSetHash(keys);
    std::reverse(keys.begin(), keys.end());
    EXPECT_EQ(pointSetHash(keys), forward);

    // A sum, not an XOR: a duplicated point must NOT cancel out.
    keys.push_back(keys.front());
    EXPECT_NE(pointSetHash(keys), forward);
    // Content sensitivity.
    keys.pop_back();
    keys[0].seed ^= 1;
    EXPECT_NE(pointSetHash(keys), forward);
}

TEST(Shard, HeaderRoundTripsAndNonHeadersAreIgnored)
{
    ShardHeader header;
    header.shard.index = 3;
    header.shard.count = 8;
    header.spec_name = "paper-fig13";
    header.point_set_hash = 0xdeadbeefULL;
    header.total_points = 252;

    const std::string line = shardHeaderToJson(header).dump();
    const auto back = shardHeaderFromLine(line);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->shard.index, 3u);
    EXPECT_EQ(back->shard.count, 8u);
    EXPECT_EQ(back->spec_name, "paper-fig13");
    EXPECT_EQ(back->point_set_hash, 0xdeadbeefULL);
    EXPECT_EQ(back->total_points, 252u);

    EXPECT_FALSE(shardHeaderFromLine("{\"circuit\":\"0x1\"}").has_value());
    EXPECT_FALSE(shardHeaderFromLine("{\"sweep_sh").has_value());
    EXPECT_FALSE(readShardHeader("/no/such/checkpoint.jsonl").has_value());
}

/**
 * The partition property, on randomized specs: for every N in 1..16
 * the shard function splits the expansion into disjoint, covering
 * slices, and the split is stable under spec-entry permutation.  The
 * RNG seed is logged (and injectable via SNAILQC_TEST_SEED) so any
 * failure replays exactly.
 */
TEST(Shard, PartitionPropertyOnRandomSpecs)
{
    unsigned long long seed;
    if (const char *env = std::getenv("SNAILQC_TEST_SEED")) {
        seed = std::stoull(env);
    } else {
        seed = std::random_device{}();
    }
    std::cerr << "[shard-property] SNAILQC_TEST_SEED=" << seed << "\n";
    std::mt19937_64 rng(seed);

    const std::vector<std::string> bench_pool = {
        "ghz", "qft", "qaoa", "bv", "wstate", "adder", "tim"};
    const std::vector<std::string> target_pool = {
        "heavy-hex-20-cx", "square-16-syc", "tree-20-sqiswap",
        "hypercube-16-sqiswap", "corral11-16-sqiswap"};
    const std::vector<std::string> pipeline_pool = {
        "dense,basic-route", "dense,stochastic-route=4",
        "vf2,sabre-route", "dense,lookahead-route"};
    const std::vector<int> width_pool = {4, 5, 6, 7, 8};

    // Distinct picks so the expansion itself holds no duplicate
    // points (a spec bug the merge would rightly reject).
    const auto pick = [&](std::vector<std::string> pool, std::size_t n) {
        std::shuffle(pool.begin(), pool.end(), rng);
        pool.resize(n);
        return pool;
    };

    for (int round = 0; round < 6; ++round) {
        SCOPED_TRACE("round " + std::to_string(round) + ", seed " +
                     std::to_string(seed));
        SweepSpec spec;
        spec.name = "property-" + std::to_string(round);
        spec.seed = rng();
        std::vector<int> widths = width_pool;
        std::shuffle(widths.begin(), widths.end(), rng);
        widths.resize(1 + rng() % 3);
        for (const std::string &bench :
             pick(bench_pool, 1 + rng() % 3)) {
            spec.circuits.push_back(CircuitSpec{bench, widths, ""});
        }
        for (const std::string &name :
             pick(target_pool, 1 + rng() % 3)) {
            TargetSpec target;
            target.target = name;
            spec.targets.push_back(std::move(target));
        }
        spec.pipelines = pick(pipeline_pool, 1 + rng() % 2);

        const auto targets = expandTargets(spec);
        const auto circuits = expandCircuits(spec);
        const auto points = expandSweepPoints(spec, circuits, targets);
        ASSERT_FALSE(points.empty());
        const auto keys = sweepPointKeys(points, circuits, targets);

        const std::set<CacheKey> unique(keys.begin(), keys.end());
        ASSERT_EQ(unique.size(), keys.size())
            << "random spec expanded duplicate points";

        for (unsigned n = 1; n <= 16; ++n) {
            std::vector<std::set<CacheKey>> slices(n);
            for (const CacheKey &key : keys) {
                const unsigned shard = shardOf(key, n);
                ASSERT_LT(shard, n);
                // Disjoint: no key lands in a slice twice (and, being
                // a function of content, never in two slices).
                EXPECT_TRUE(slices[shard].insert(key).second);
            }
            // Covering: slice sizes sum back to the expansion.
            std::size_t total = 0;
            for (const auto &slice : slices) {
                total += slice.size();
            }
            EXPECT_EQ(total, keys.size()) << "N=" << n;
        }

        // Permuting the spec's entry order must not move any point to
        // a different shard, nor change the spec fingerprint.
        SweepSpec shuffled = spec;
        std::shuffle(shuffled.circuits.begin(), shuffled.circuits.end(),
                     rng);
        std::shuffle(shuffled.targets.begin(), shuffled.targets.end(),
                     rng);
        std::shuffle(shuffled.pipelines.begin(), shuffled.pipelines.end(),
                     rng);
        const auto targets2 = expandTargets(shuffled);
        const auto circuits2 = expandCircuits(shuffled);
        const auto points2 =
            expandSweepPoints(shuffled, circuits2, targets2);
        const auto keys2 = sweepPointKeys(points2, circuits2, targets2);

        EXPECT_EQ(pointSetHash(keys2), pointSetHash(keys));
        EXPECT_EQ(std::set<CacheKey>(keys2.begin(), keys2.end()), unique);
        std::map<CacheKey, unsigned> assignment;
        for (const CacheKey &key : keys) {
            assignment.emplace(key, shardOf(key, 7));
        }
        for (const CacheKey &key : keys2) {
            const auto it = assignment.find(key);
            ASSERT_NE(it, assignment.end());
            EXPECT_EQ(shardOf(key, 7), it->second);
        }
    }
}

TEST(Shard, ShardedRunsMergeByteIdenticalAcrossConfigs)
{
    const SweepSpec spec = shardSpec();
    EngineOptions serial;
    serial.threads = 1;
    const SweepRun reference = runSweep(spec, serial);
    const std::string ref_csv = csvOf(reference);
    const std::string ref_json = jsonOf(reference);

    // Two shards, deliberately different thread counts per shard.
    const std::string s0 = scratch("shard_cfg_0.jsonl");
    const std::string s1 = scratch("shard_cfg_1.jsonl");
    const SweepRun half0 = runShard(spec, 0, 2, s0, 1);
    const SweepRun half1 = runShard(spec, 1, 2, s1, 4);
    EXPECT_EQ(half0.points.size() + half1.points.size(),
              reference.points.size());
    EXPECT_EQ(half0.point_set_hash, half1.point_set_hash);

    ShardMergeStats stats;
    const SweepRun merged2 = mergeSweepShards(spec, {s0, s1}, &stats);
    EXPECT_EQ(stats.shard_files, 2u);
    EXPECT_EQ(stats.headers, 2u);
    EXPECT_EQ(stats.records, reference.points.size());
    EXPECT_EQ(csvOf(merged2), ref_csv);
    EXPECT_EQ(jsonOf(merged2), ref_json);

    // Seven shards, one of them warm from a persistent store (the
    // cross-host picture: that worker reuses another machine's work).
    const std::string store_dir = scratch("shard_cfg_store");
    CacheStore store(store_dir);
    std::vector<std::string> files;
    for (unsigned i = 0; i < 7; ++i) {
        const std::string path =
            scratch("shard_cfg7_" + std::to_string(i) + ".jsonl");
        const SweepRun part = runShard(spec, i, 7, path, 0,
                                       i == 3 ? &store : nullptr);
        EXPECT_EQ(part.shard_index, i);
        EXPECT_EQ(part.shard_count, 7u);
        files.push_back(path);
    }
    // Re-run shard 3 fresh: now fully warm, and its checkpoint must
    // come out the same.
    const std::string warm = scratch("shard_cfg7_warm.jsonl");
    const SweepRun rewarmed = runShard(spec, 3, 7, warm, 0, &store);
    EXPECT_EQ(rewarmed.stats.computed, 0u);
    EXPECT_EQ(rewarmed.stats.from_store, rewarmed.points.size());
    files[3] = warm;

    const SweepRun merged7 = mergeSweepShards(spec, files);
    EXPECT_EQ(csvOf(merged7), ref_csv);
    EXPECT_EQ(jsonOf(merged7), ref_json);
}

TEST(Shard, KilledShardResumesAndMergesByteIdentical)
{
    const SweepSpec spec = shardSpec();
    const SweepRun reference = runSweep(spec, EngineOptions{});

    const std::string s0 = scratch("shard_kill_0.jsonl");
    const std::string s1 = scratch("shard_kill_1.jsonl");
    runShard(spec, 0, 2, s0);
    const SweepRun full1 = runShard(spec, 1, 2, s1);
    ASSERT_GE(full1.points.size(), 2u);

    // Kill shard 1 mid-stream: header + one record survive, the next
    // record is torn.  An unrepaired merge must name the gap...
    truncateMidLine(s1, 2);
    try {
        mergeSweepShards(spec, {s0, s1});
        FAIL() << "expected ShardCoverageError";
    } catch (const ShardCoverageError &error) {
        EXPECT_EQ(error.missingCount(), full1.points.size() - 1);
        EXPECT_FALSE(error.pointLabel().empty());
        EXPECT_NE(std::string(error.what()).find(error.pointLabel()),
                  std::string::npos);
    }

    // ...and a --resume rerun completes the shard: restored the one
    // intact record, recomputed the rest, reports byte-identical.
    const SweepRun resumed = runShard(spec, 1, 2, s1, 0, nullptr, true);
    EXPECT_EQ(resumed.stats.restored, 1u);
    EXPECT_EQ(resumed.stats.computed, full1.points.size() - 1);

    const SweepRun merged = mergeSweepShards(spec, {s0, s1});
    EXPECT_EQ(csvOf(merged), csvOf(reference));
    EXPECT_EQ(jsonOf(merged), jsonOf(reference));
}

TEST(Shard, MergeRejectsDuplicateForeignAndWrongSpecPoints)
{
    const SweepSpec spec = shardSpec();
    const std::string s0 = scratch("shard_err_0.jsonl");
    const std::string s1 = scratch("shard_err_1.jsonl");
    runShard(spec, 0, 2, s0);
    runShard(spec, 1, 2, s1);

    // A point present in two shard files violates disjointness even
    // with identical metrics — overlapping runs are a deployment bug.
    const std::string dup = scratch("shard_err_dup.jsonl");
    fs::copy_file(s1, dup);
    try {
        mergeSweepShards(spec, {s0, s1, dup});
        FAIL() << "expected DuplicatePointError";
    } catch (const DuplicatePointError &error) {
        EXPECT_EQ(error.path(), dup);
        EXPECT_FALSE(error.pointKey().empty());
        EXPECT_NE(std::string(error.what()).find(s1), std::string::npos);
    }

    // A shard of a *different* sweep announces itself via its header.
    SweepSpec other = spec;
    other.name = "test-shard-other";
    other.seed = 12; // different seeds => disjoint point content
    const std::string alien = scratch("shard_err_alien.jsonl");
    runShard(other, 0, 2, alien);
    try {
        mergeSweepShards(spec, {s0, s1, alien});
        FAIL() << "expected ShardHeaderError";
    } catch (const ShardHeaderError &error) {
        EXPECT_NE(std::string(error.what()).find(alien),
                  std::string::npos);
        EXPECT_NE(std::string(error.what()).find("test-shard-other"),
                  std::string::npos);
    }

    // Headerless foreign records (a plain checkpoint from another
    // sweep) fall back to the per-point guard.
    const std::string plain = scratch("shard_err_plain.jsonl");
    EngineOptions headerless;
    headerless.checkpoint_path = plain;
    runSweep(other, headerless);
    EXPECT_THROW(mergeSweepShards(spec, {s0, s1, plain}),
                 ForeignPointError);

    // Merging an incomplete shard set is a coverage error...
    EXPECT_THROW(mergeSweepShards(spec, {s0}), ShardCoverageError);
    // ...but a full single-process checkpoint alone covers everything.
    const std::string whole = scratch("shard_err_whole.jsonl");
    EngineOptions whole_options;
    whole_options.checkpoint_path = whole;
    const SweepRun reference = runSweep(spec, whole_options);
    const SweepRun merged = mergeSweepShards(spec, {whole});
    EXPECT_EQ(csvOf(merged), csvOf(reference));
}

TEST(Shard, ResumeRefusesForeignShardCheckpoint)
{
    const SweepSpec spec = shardSpec();
    const std::string path = scratch("shard_resume_mismatch.jsonl");
    runShard(spec, 0, 2, path);
    // Same file, different slice: resuming would launder shard 0's
    // points into shard 1's results.
    EXPECT_THROW(runShard(spec, 1, 2, path, 0, nullptr, true),
                 ShardHeaderError);
    // The matching slice resumes cleanly and computes nothing.
    const SweepRun again = runShard(spec, 0, 2, path, 0, nullptr, true);
    EXPECT_EQ(again.stats.computed, 0u);
}

TEST(Checkpoint, DuplicatePointsConflictingMetricsAreTyped)
{
    const SweepSpec spec = shardSpec();
    const std::string path = scratch("ckpt_dup.jsonl");
    EngineOptions options;
    options.checkpoint_path = path;
    const SweepRun run = runSweep(spec, options);

    // A byte-identical repeated record is the benign two-workers race:
    // restore once, no error (regression: the old loader silently kept
    // the *last* record, masking real conflicts).
    std::vector<std::string> lines = readLines(path);
    ASSERT_EQ(lines.size(), run.points.size());
    {
        std::ofstream out(path, std::ios::app);
        out << lines[1] << '\n';
    }
    TranspileCache benign;
    EXPECT_EQ(loadCheckpoint(path, benign), run.points.size());

    // The same key with different metrics is a real conflict.
    const std::string tampered = scratch("ckpt_dup_conflict.jsonl");
    {
        std::ofstream out(tampered, std::ios::trunc);
        for (const std::string &line : lines) {
            out << line << '\n';
        }
        JsonValue forged = JsonValue::parse(lines[1]);
        JsonValue::Object object = forged.asObject();
        JsonValue::Object metrics =
            object.at("metrics").asObject();
        metrics["swaps_total"] = JsonValue(
            metrics.at("swaps_total").asNumber() + 1);
        object["metrics"] = JsonValue(std::move(metrics));
        out << JsonValue(std::move(object)).dump() << '\n';
    }
    TranspileCache conflicted;
    try {
        loadCheckpoint(tampered, conflicted);
        FAIL() << "expected DuplicatePointError";
    } catch (const DuplicatePointError &error) {
        EXPECT_EQ(error.path(), tampered);
        EXPECT_FALSE(error.pointKey().empty());
    }
}

/**
 * The acceptance bar (ROADMAP): sharding the full paper-fig13 spec
 * N ∈ {2, 7} ways and merging reproduces the single-process reports
 * byte for byte — including after one shard is killed and resumed.
 * All runs share one persistent store so the 252-point spec costs one
 * cold evaluation total.
 */
TEST(Shard, PaperFig13ShardedMergeIsByteIdentical)
{
    const SweepSpec spec = loadSweepSpecFile(
        std::string(SNAILQC_SOURCE_DIR) +
        "/examples/sweeps/paper-fig13.json");
    const std::string store_dir = scratch("fig13_store");
    CacheStore store(store_dir);

    EngineOptions cold;
    cold.cache_store = &store;
    const SweepRun reference = runSweep(spec, cold);
    ASSERT_EQ(reference.points.size(), 252u);
    const std::string ref_csv = csvOf(reference);
    const std::string ref_json = jsonOf(reference);

    for (unsigned n : {2u, 7u}) {
        std::vector<std::string> files;
        for (unsigned i = 0; i < n; ++i) {
            const std::string path =
                scratch("fig13_" + std::to_string(n) + "_" +
                        std::to_string(i) + ".jsonl");
            runShard(spec, i, n, path, 0, &store);
            files.push_back(path);
        }
        // Kill shard n-1 mid-stream and resume it.
        truncateMidLine(files[n - 1], 5);
        EXPECT_THROW(mergeSweepShards(spec, files), ShardCoverageError)
            << "N=" << n;
        runShard(spec, n - 1, n, files[n - 1], 0, &store, true);

        ShardMergeStats stats;
        const SweepRun merged = mergeSweepShards(spec, files, &stats);
        EXPECT_EQ(stats.records, 252u) << "N=" << n;
        EXPECT_EQ(merged.total_points, 252u) << "N=" << n;
        EXPECT_EQ(csvOf(merged), ref_csv) << "N=" << n;
        EXPECT_EQ(jsonOf(merged), ref_json) << "N=" << n;
    }
}

} // namespace
} // namespace snail
