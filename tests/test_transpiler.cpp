/**
 * @file
 * Unit and integration tests for the transpiler: layouts, all three
 * routers (validity + simulated equivalence), basis translation counts,
 * and the full Fig. 10 pipeline.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "circuits/circuits.hpp"
#include "common/error.hpp"
#include "sim/equivalence.hpp"
#include "topology/builders.hpp"
#include "topology/registry.hpp"
#include "transpiler/delta_scorer.hpp"
#include "transpiler/pipeline.hpp"

namespace snail
{
namespace
{

/** Line topology 0-1-2-...-n. */
CouplingGraph
lineGraph(int n)
{
    CouplingGraph g(n, "line");
    for (int i = 0; i + 1 < n; ++i) {
        g.addEdge(i, i + 1);
    }
    return g;
}

/** Every 2Q gate of a routed circuit must act on a coupled pair. */
void
expectValidRouting(const Circuit &routed, const CouplingGraph &graph)
{
    for (const auto &op : routed.instructions()) {
        if (op.isTwoQubit()) {
            EXPECT_TRUE(graph.hasEdge(op.q0(), op.q1()))
                << op.toString() << " not coupled on " << graph.name();
        }
    }
}

TEST(Layout, AssignAndSwap)
{
    Layout l(2, 4);
    l.assign(0, 2);
    l.assign(1, 3);
    EXPECT_TRUE(l.isComplete());
    EXPECT_EQ(l.physical(0), 2);
    EXPECT_EQ(l.virtualAt(3), 1);
    EXPECT_EQ(l.virtualAt(0), -1);
    l.swapPhysical(2, 0);  // move virtual 0 to physical 0
    EXPECT_EQ(l.physical(0), 0);
    EXPECT_EQ(l.virtualAt(2), -1);
    EXPECT_THROW(l.assign(0, 1), SnailError);
}

TEST(Layout, RejectsTooSmallDevice)
{
    EXPECT_THROW(Layout(5, 4), SnailError);
}

TEST(DenseLayout, PicksDensestRegion)
{
    // Device: a 4-clique attached to a long tail; a 4-qubit circuit must
    // land on the clique.
    CouplingGraph g(8, "clique-tail");
    for (int a = 0; a < 4; ++a) {
        for (int b = a + 1; b < 4; ++b) {
            g.addEdge(a, b);
        }
    }
    for (int i = 3; i + 1 < 8; ++i) {
        g.addEdge(i, i + 1);
    }
    Circuit c(4);
    c.cx(0, 1);
    c.cx(2, 3);
    const Layout l = denseLayout(c, g);
    for (int v = 0; v < 4; ++v) {
        EXPECT_LT(l.physical(v), 4) << "virtual " << v << " off-clique";
    }
}

TEST(DenseLayout, HeaviestQubitGetsBestConnectivity)
{
    const CouplingGraph g = namedTopology("tree-20");
    Circuit c(5);
    // Virtual 2 participates in the most 2Q gates.
    c.cx(2, 0);
    c.cx(2, 1);
    c.cx(2, 3);
    c.cx(2, 4);
    c.cx(0, 1);
    const Layout l = denseLayout(c, g);
    // Its physical home must have at least the degree of the others.
    const int deg2 = g.degree(l.physical(2));
    for (int v = 0; v < 5; ++v) {
        EXPECT_GE(deg2, 0);
        EXPECT_LE(g.degree(l.physical(v)), 7);
    }
    EXPECT_GE(deg2, g.degree(l.physical(0)));
}

class RouterCase
    : public ::testing::TestWithParam<std::tuple<RouterKind, const char *>>
{
  protected:
    static const Router &
    makeRouter(RouterKind kind)
    {
        static BasicRouter basic;
        static StochasticSwapRouter stochastic(8);
        static SabreRouter sabre;
        static LookaheadRouter lookahead;
        switch (kind) {
          case RouterKind::Basic:
            return basic;
          case RouterKind::Stochastic:
            return stochastic;
          case RouterKind::Sabre:
            return sabre;
          case RouterKind::Lookahead:
            return lookahead;
        }
        return basic;
    }
};

TEST_P(RouterCase, ValidAndEquivalentOnLine)
{
    const RouterKind kind = std::get<0>(GetParam());
    const Router &router = makeRouter(kind);
    const CouplingGraph g = lineGraph(5);

    Circuit c(5, "allpairs");
    c.h(0);
    c.cx(0, 4);
    c.cx(1, 3);
    c.cx(0, 2);
    c.rz(0.3, 4);
    c.cx(4, 1);

    Rng rng(101);
    const Layout init = Layout::identity(5, 5);
    const RoutingResult r = router.route(c, g, init, rng);
    expectValidRouting(r.circuit, g);
    EXPECT_EQ(r.circuit.countKind(GateKind::Swap), r.swaps_added);

    Rng vrng(102);
    EXPECT_TRUE(routedCircuitEquivalent(c, r.circuit, init.v2p(),
                                        r.final_layout.v2p(), 3, vrng))
        << "router " << router.name();
}

TEST_P(RouterCase, ValidAndEquivalentOnCorral)
{
    const RouterKind kind = std::get<0>(GetParam());
    const Router &router = makeRouter(kind);
    const CouplingGraph g = namedTopology("corral11-16");

    const Circuit c = qft(6);
    Rng rng(103);
    const Layout init = Layout::identity(6, 16);
    const RoutingResult r = router.route(c, g, init, rng);
    expectValidRouting(r.circuit, g);

    Rng vrng(104);
    EXPECT_TRUE(routedCircuitEquivalent(c, r.circuit, init.v2p(),
                                        r.final_layout.v2p(), 2, vrng))
        << "router " << router.name();
}

TEST_P(RouterCase, NoSwapsWhenFullyConnected)
{
    const RouterKind kind = std::get<0>(GetParam());
    const Router &router = makeRouter(kind);
    CouplingGraph g(4, "k4");
    for (int a = 0; a < 4; ++a) {
        for (int b = a + 1; b < 4; ++b) {
            g.addEdge(a, b);
        }
    }
    const Circuit c = qft(4);
    Rng rng(105);
    const RoutingResult r =
        router.route(c, g, Layout::identity(4, 4), rng);
    // The QFT's own reversal SWAPs stay, but routing adds none.
    EXPECT_EQ(r.swaps_added, 0u) << router.name();
}

INSTANTIATE_TEST_SUITE_P(
    AllRouters, RouterCase,
    ::testing::Values(std::make_tuple(RouterKind::Basic, "basic"),
                      std::make_tuple(RouterKind::Stochastic, "stochastic"),
                      std::make_tuple(RouterKind::Sabre, "sabre"),
                      std::make_tuple(RouterKind::Lookahead, "lookahead")),
    [](const ::testing::TestParamInfo<RouterCase::ParamType> &info) {
        return std::get<1>(info.param);
    });

TEST(SwappedView, DeltaScoresMatchCopyBasedScoresOnRandomLayouts)
{
    // The delta-scoring oracle: for random layouts and every candidate
    // physical pair, a SwappedView must answer physical() exactly as a
    // full Layout copy with swapPhysical() applied — and therefore any
    // distance-sum score computed through it is identical to the old
    // copy-based score.
    const CouplingGraph g = namedTopology("corral11-16");
    Rng rng(2026);
    for (int trial = 0; trial < 50; ++trial) {
        // Random injective layout of 10 virtual onto 16 physical qubits.
        std::vector<int> perm(16);
        for (int i = 0; i < 16; ++i) {
            perm[static_cast<std::size_t>(i)] = i;
        }
        for (int i = 15; i > 0; --i) {
            const int j = static_cast<int>(rng.next() %
                                           static_cast<std::uint64_t>(i + 1));
            std::swap(perm[static_cast<std::size_t>(i)],
                      perm[static_cast<std::size_t>(j)]);
        }
        Layout layout(10, 16);
        for (int v = 0; v < 10; ++v) {
            layout.assign(v, perm[static_cast<std::size_t>(v)]);
        }

        // Random "front" of virtual qubit pairs to score.
        std::vector<std::pair<int, int>> front;
        for (int k = 0; k < 5; ++k) {
            const int a = static_cast<int>(rng.next() % 10);
            int b = static_cast<int>(rng.next() % 10);
            if (a == b) {
                b = (b + 1) % 10;
            }
            front.emplace_back(a, b);
        }

        for (const auto &[pa, pb] : g.edges()) {
            Layout copy = layout;
            copy.swapPhysical(pa, pb);
            const SwappedView view(layout, pa, pb);
            for (int v = 0; v < 10; ++v) {
                ASSERT_EQ(view.physical(v), copy.physical(v))
                    << "trial " << trial << " swap (" << pa << ", " << pb
                    << ") virtual " << v;
            }
            int view_cost = 0;
            int copy_cost = 0;
            for (const auto &[a, b] : front) {
                view_cost += g.distance(view.physical(a), view.physical(b));
                copy_cost += g.distance(copy.physical(a), copy.physical(b));
            }
            ASSERT_EQ(view_cost, copy_cost);
        }
    }
}

TEST(DeltaScorer, IncrementalTermsMatchFullResumOnRandomInputs)
{
    // The incremental-scoring oracle: for random layouts and gate
    // sets, every swapDelta() answer must equal the brute-force
    // re-sum through a SwappedView (the PR-4 reference semantics),
    // and a chain of commitSwap()s must leave the scorer in exactly
    // the state a rebuild() against the really-swapped layout gives —
    // sums, per-term endpoints/distances, and the adjacent count.
    const CouplingGraph g = namedTopology("corral11-16");
    Rng rng(4242);
    for (int round = 0; round < 25; ++round) {
        // Random injective layout of 12 virtual onto 16 physical.
        std::vector<int> perm(16);
        for (int i = 0; i < 16; ++i) {
            perm[static_cast<std::size_t>(i)] = i;
        }
        for (int i = 15; i > 0; --i) {
            const int j = static_cast<int>(rng.next() %
                                           static_cast<std::uint64_t>(i + 1));
            std::swap(perm[static_cast<std::size_t>(i)],
                      perm[static_cast<std::size_t>(j)]);
        }
        Layout layout(12, 16);
        for (int v = 0; v < 12; ++v) {
            layout.assign(v, perm[static_cast<std::size_t>(v)]);
        }

        // Random front and extended sets as real instructions.
        Circuit c(12);
        const int n_front = 2 + static_cast<int>(rng.next() % 5);
        const int n_ext = static_cast<int>(rng.next() % 5);
        for (int k = 0; k < n_front + n_ext; ++k) {
            const int a = static_cast<int>(rng.next() % 12);
            int b = static_cast<int>(rng.next() % 12);
            if (a == b) {
                b = (b + 1) % 12;
            }
            c.cx(a, b);
        }
        std::vector<const Instruction *> front;
        std::vector<const Instruction *> extended;
        for (std::size_t k = 0; k < c.size(); ++k) {
            (static_cast<int>(k) < n_front ? front : extended)
                .push_back(&c.instructions()[k]);
        }

        auto resum = [&](const auto &probe,
                         const std::vector<const Instruction *> &ops) {
            long long total = 0;
            for (const Instruction *op : ops) {
                total += g.distance(probe.physical(op->q0()),
                                    probe.physical(op->q1()));
            }
            return total;
        };

        DeltaScorer scorer(g);
        scorer.rebuild(layout, front, extended);
        ASSERT_EQ(scorer.frontSum(), resum(layout, front));
        ASSERT_EQ(scorer.extendedSum(), resum(layout, extended));

        // Every device edge as a hypothetical swap.
        for (const auto &[pa, pb] : g.edges()) {
            const SwappedView view(layout, pa, pb);
            const DeltaScorer::Delta delta = scorer.swapDelta(pa, pb);
            ASSERT_EQ(scorer.frontSum() + delta.front, resum(view, front))
                << "round " << round << " swap (" << pa << ", " << pb
                << ")";
            ASSERT_EQ(scorer.extendedSum() + delta.extended,
                      resum(view, extended));
        }

        // Commit a random swap chain; the scorer must track a real
        // layout mutated the same way, exactly.
        const auto edges = g.edges();
        for (int step = 0; step < 6; ++step) {
            const auto &[pa, pb] =
                edges[static_cast<std::size_t>(rng.next() % edges.size())];
            scorer.commitSwap(pa, pb);
            layout.swapPhysical(pa, pb);

            DeltaScorer fresh(g);
            fresh.rebuild(layout, front, extended);
            ASSERT_EQ(scorer.frontSum(), fresh.frontSum());
            ASSERT_EQ(scorer.extendedSum(), fresh.extendedSum());
            ASSERT_EQ(scorer.frontAdjacentCount(),
                      fresh.frontAdjacentCount());
            ASSERT_EQ(scorer.frontTerms().size(),
                      fresh.frontTerms().size());
            for (std::size_t k = 0; k < fresh.frontTerms().size(); ++k) {
                ASSERT_EQ(scorer.frontTerms()[k].p0,
                          fresh.frontTerms()[k].p0);
                ASSERT_EQ(scorer.frontTerms()[k].p1,
                          fresh.frontTerms()[k].p1);
                ASSERT_EQ(scorer.frontTerms()[k].dist,
                          fresh.frontTerms()[k].dist);
            }
            for (std::size_t k = 0; k < fresh.extendedTerms().size();
                 ++k) {
                ASSERT_EQ(scorer.extendedTerms()[k].p0,
                          fresh.extendedTerms()[k].p0);
                ASSERT_EQ(scorer.extendedTerms()[k].p1,
                          fresh.extendedTerms()[k].p1);
                ASSERT_EQ(scorer.extendedTerms()[k].dist,
                          fresh.extendedTerms()[k].dist);
            }
            // And deltas keep agreeing with the brute-force re-sum.
            const auto &[qa, qb] =
                edges[static_cast<std::size_t>(rng.next() % edges.size())];
            const SwappedView view(layout, qa, qb);
            const DeltaScorer::Delta delta = scorer.swapDelta(qa, qb);
            ASSERT_EQ(scorer.frontSum() + delta.front, resum(view, front));
            ASSERT_EQ(scorer.extendedSum() + delta.extended,
                      resum(view, extended));
        }
    }
}

TEST(StochasticRouter, TrialThreadCountsProduceBitIdenticalRoutes)
{
    // The acceptance bar for parallel trials: 1, 4, and 16 worker
    // threads must produce byte-for-byte the same routed circuit,
    // SWAP count, and final layout (trial randomness is counter-
    // derived, selection is serial).
    const CouplingGraph g = namedTopology("corral11-16");
    const Circuit c = quantumVolume(12, 12, 7);
    Rng rng1(314);
    const StochasticSwapRouter serial(12, 1);
    const RoutingResult reference =
        serial.route(c, g, Layout::identity(12, 16), rng1);

    for (unsigned threads : {4u, 16u}) {
        const StochasticSwapRouter parallel(12, threads);
        Rng rng(314);
        const RoutingResult r =
            parallel.route(c, g, Layout::identity(12, 16), rng);
        EXPECT_EQ(r.swaps_added, reference.swaps_added) << threads;
        EXPECT_EQ(r.final_layout.v2p(), reference.final_layout.v2p());
        ASSERT_EQ(r.circuit.size(), reference.circuit.size());
        EXPECT_EQ(r.circuit.contentHash(), reference.circuit.contentHash())
            << threads << " threads diverged from the serial route";
    }
}

TEST(SabreRouter, ThrowsTypedRoutingErrorInsteadOfSpinningForever)
{
    // Adversarial SWAP penalty: edge (0, 1) is infinitely attractive,
    // so the router swaps it back and forth forever — the decay valve
    // only resets decay, which the -1e12 penalty dwarfs.  The hard
    // step cap must convert the livelock into a typed RoutingError
    // carrying the circuit and graph names.
    const CouplingGraph g = lineGraph(5);
    Circuit c(5, "adversarial");
    c.cx(0, 4);
    const SabreRouter router([](int a, int b) {
        const bool pinned = (a == 0 && b == 1) || (a == 1 && b == 0);
        return pinned ? -1e12 : 0.0;
    });
    Rng rng(9);
    try {
        router.route(c, g, Layout::identity(5, 5), rng);
        FAIL() << "adversarial penalty must trigger the step cap";
    } catch (const RoutingError &e) {
        EXPECT_EQ(e.routerName(), "sabre");
        EXPECT_EQ(e.circuitName(), "adversarial");
        EXPECT_EQ(e.graphName(), "line");
        EXPECT_GT(e.steps(), 0);
        EXPECT_NE(std::string(e.what()).find("adversarial"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("line"), std::string::npos);
    }
}

TEST(SabreRouter, BenignPenaltyStillRoutesUnderTheStepCap)
{
    // A realistic (finite, positive) penalty must never trip the cap.
    const CouplingGraph g = namedTopology("corral11-16");
    const Circuit c = qft(8);
    const SabreRouter router(
        [](int a, int b) { return 0.01 * static_cast<double>(a + b); });
    Rng rng(11);
    const RoutingResult r =
        router.route(c, g, Layout::identity(8, 16), rng);
    for (const auto &op : r.circuit.instructions()) {
        if (op.isTwoQubit()) {
            EXPECT_TRUE(g.hasEdge(op.q0(), op.q1()));
        }
    }
}

TEST(StochasticRouter, DeterministicUnderSeed)
{
    const CouplingGraph g = namedTopology("square-16");
    const Circuit c = quantumVolume(8, 8, 5);
    const StochasticSwapRouter router(8);
    Rng rng1(42);
    Rng rng2(42);
    const RoutingResult a =
        router.route(c, g, Layout::identity(8, 16), rng1);
    const RoutingResult b =
        router.route(c, g, Layout::identity(8, 16), rng2);
    EXPECT_EQ(a.swaps_added, b.swaps_added);
    EXPECT_EQ(a.circuit.size(), b.circuit.size());
}

TEST(StochasticRouter, RicherTopologyNeedsFewerSwaps)
{
    // The corral should beat the line by a wide margin on QV.
    const Circuit c = quantumVolume(10, 10, 9);
    const StochasticSwapRouter router(8);
    Rng rng1(7);
    const RoutingResult line = router.route(
        c, lineGraph(16), Layout::identity(10, 16), rng1);
    Rng rng2(7);
    const RoutingResult cor = router.route(
        c, namedTopology("corral11-16"), Layout::identity(10, 16), rng2);
    EXPECT_LT(cor.swaps_added, line.swaps_added);
}

TEST(BasisTranslation, CountsMatchClassRules)
{
    Circuit c(3);
    c.h(0);
    c.cx(0, 1);     // CNOT class: 1 in CX basis, 2 in sqiswap
    c.swap(1, 2);   // SWAP class: 3 in both
    c.cp(0.5, 0, 2); // CPhase: 2 in both

    const auto cx_counts =
        basisCountsPerInstruction(c, BasisSpec{BasisKind::CNOT});
    EXPECT_EQ(cx_counts, (std::vector<int>{0, 1, 3, 2}));

    const auto sq_counts =
        basisCountsPerInstruction(c, BasisSpec{BasisKind::SqISwap});
    EXPECT_EQ(sq_counts, (std::vector<int>{0, 2, 3, 2}));
}

TEST(BasisTranslation, StatsTotalsAndCriticalPath)
{
    Circuit c(4);
    c.cx(0, 1);
    c.cx(2, 3);   // parallel with the first
    c.swap(1, 2); // depends on both
    const TranslationStats cx_stats =
        translationStats(c, BasisSpec{BasisKind::CNOT});
    EXPECT_EQ(cx_stats.total_2q, 5u);            // 1 + 1 + 3
    EXPECT_DOUBLE_EQ(cx_stats.critical_2q, 4.0); // 1 then 3
    EXPECT_DOUBLE_EQ(cx_stats.total_duration, 5.0);

    const TranslationStats sq_stats =
        translationStats(c, BasisSpec{BasisKind::SqISwap});
    EXPECT_EQ(sq_stats.total_2q, 7u);            // 2 + 2 + 3
    EXPECT_DOUBLE_EQ(sq_stats.critical_2q, 5.0);
    // Half-duration pulses: the co-design time advantage.
    EXPECT_DOUBLE_EQ(sq_stats.total_duration, 3.5);
    EXPECT_DOUBLE_EQ(sq_stats.critical_duration, 2.5);
}

TEST(BasisTranslation, ExpansionPreservesSemantics)
{
    Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.swap(1, 2);
    c.cp(0.7, 0, 2);
    const Circuit expanded = expandToBasis(c, BasisSpec{BasisKind::SqISwap});
    // Only 1Q gates and sqiswap remain.
    for (const auto &op : expanded.instructions()) {
        if (op.isTwoQubit()) {
            EXPECT_EQ(op.gate().kind(), GateKind::SqISwap);
        }
    }
    EXPECT_TRUE(circuitsEquivalent(c, expanded, 1e-5));
}

TEST(Pipeline, EndToEndMetricsConsistent)
{
    const Circuit c = qft(8);
    const CouplingGraph g = namedTopology("square-16");
    TranspileOptions opts;
    opts.basis = BasisSpec{BasisKind::SqISwap};
    opts.stochastic_trials = 8;
    const TranspileResult r = transpile(c, g, opts);

    expectValidRouting(r.routed, g);
    // Metric sanity: totals dominate critical paths; the basis total is at
    // least the pre-translation 2Q count (every op needs >= 1 pulse here).
    EXPECT_GE(r.metrics.basis_2q_total, r.metrics.ops_2q_pre);
    EXPECT_LE(r.metrics.swaps_critical,
              static_cast<double>(r.metrics.swaps_total));
    EXPECT_LE(r.metrics.basis_2q_critical,
              static_cast<double>(r.metrics.basis_2q_total));
    EXPECT_DOUBLE_EQ(r.metrics.duration_total,
                     0.5 * static_cast<double>(r.metrics.basis_2q_total));
}

TEST(Pipeline, RoutedCircuitComputesTheBenchmark)
{
    const Circuit c = ghz(6);
    const CouplingGraph g = namedTopology("hypercube-16");
    TranspileOptions opts;
    opts.seed = 77;
    const TranspileResult r = transpile(c, g, opts);
    Rng vrng(78);
    EXPECT_TRUE(routedCircuitEquivalent(c, r.routed,
                                        r.initial_layout.v2p(),
                                        r.final_layout.v2p(), 3, vrng));
}

TEST(SabreLayout, ProducesCompleteValidLayout)
{
    const Circuit c = qft(8);
    const CouplingGraph g = namedTopology("square-16");
    Rng rng(61);
    const Layout l = sabreLayout(c, g, 2, rng);
    EXPECT_TRUE(l.isComplete());
    // Injectivity: all physical homes distinct.
    std::vector<int> homes = l.v2p();
    std::sort(homes.begin(), homes.end());
    EXPECT_EQ(std::adjacent_find(homes.begin(), homes.end()), homes.end());
}

TEST(SabreLayout, PipelineOptionRoutesCorrectly)
{
    const Circuit c = qft(8);
    const CouplingGraph g = namedTopology("square-16");
    TranspileOptions opts;
    opts.layout = LayoutKind::Sabre;
    opts.seed = 63;
    const TranspileResult r = transpile(c, g, opts);
    expectValidRouting(r.routed, g);
    Rng vrng(64);
    EXPECT_TRUE(routedCircuitEquivalent(c, r.routed,
                                        r.initial_layout.v2p(),
                                        r.final_layout.v2p(), 2, vrng));
}

TEST(SabreLayout, CompetitiveWithDense)
{
    // Refinement should not be much worse than the dense seed and often
    // improves it; allow generous slack to keep the test robust.
    const Circuit c = quantumVolume(10, 10, 5);
    const CouplingGraph g = namedTopology("square-16");
    TranspileOptions dense;
    dense.seed = 65;
    TranspileOptions sabre = dense;
    sabre.layout = LayoutKind::Sabre;
    const auto rd = transpile(c, g, dense);
    const auto rs = transpile(c, g, sabre);
    EXPECT_LE(rs.metrics.swaps_total,
              rd.metrics.swaps_total + rd.metrics.swaps_total / 2 + 4);
}

TEST(Pipeline, DenseLayoutBeatsTrivialOnModularTopology)
{
    // On the tree, a dense placement should not need more SWAPs than the
    // trivial embedding for a local workload.
    const Circuit c = timHamiltonian(12);
    const CouplingGraph g = namedTopology("tree-20");
    TranspileOptions dense;
    dense.layout = LayoutKind::Dense;
    dense.seed = 5;
    TranspileOptions trivial;
    trivial.layout = LayoutKind::Trivial;
    trivial.seed = 5;
    const auto rd = transpile(c, g, dense);
    const auto rt = transpile(c, g, trivial);
    EXPECT_LE(rd.metrics.swaps_total, rt.metrics.swaps_total + 4);
}

} // namespace
} // namespace snail
