/**
 * @file
 * Shortest-path invariants over every registered topology (parameterized
 * sweep): path endpoints, step adjacency, length-distance agreement, the
 * triangle inequality, and distance symmetry.  The routers lean on these
 * properties, so they are pinned for every graph we ship.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "topology/registry.hpp"

namespace snail
{
namespace
{

class PathProperties : public ::testing::TestWithParam<std::string>
{
};

TEST_P(PathProperties, ShortestPathsAreValidAndTight)
{
    const CouplingGraph g = namedTopology(GetParam());
    Rng rng(90);
    for (int trial = 0; trial < 24; ++trial) {
        const int a = static_cast<int>(rng.index(
            static_cast<std::size_t>(g.numQubits())));
        const int b = static_cast<int>(rng.index(
            static_cast<std::size_t>(g.numQubits())));
        const auto path = g.shortestPath(a, b);
        ASSERT_FALSE(path.empty());
        EXPECT_EQ(path.front(), a);
        EXPECT_EQ(path.back(), b);
        EXPECT_EQ(static_cast<int>(path.size()) - 1, g.distance(a, b));
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
            EXPECT_TRUE(g.hasEdge(path[i], path[i + 1]))
                << "broken step in " << GetParam();
        }
    }
}

TEST_P(PathProperties, DistanceIsAMetric)
{
    const CouplingGraph g = namedTopology(GetParam());
    Rng rng(91);
    for (int trial = 0; trial < 24; ++trial) {
        const int a = static_cast<int>(rng.index(
            static_cast<std::size_t>(g.numQubits())));
        const int b = static_cast<int>(rng.index(
            static_cast<std::size_t>(g.numQubits())));
        const int c = static_cast<int>(rng.index(
            static_cast<std::size_t>(g.numQubits())));
        EXPECT_EQ(g.distance(a, b), g.distance(b, a));
        EXPECT_LE(g.distance(a, c),
                  g.distance(a, b) + g.distance(b, c));
        EXPECT_EQ(g.distance(a, a), 0);
        if (a != b) {
            EXPECT_GE(g.distance(a, b), 1);
        }
    }
}

TEST_P(PathProperties, DegreeSumMatchesEdges)
{
    const CouplingGraph g = namedTopology(GetParam());
    std::size_t degree_sum = 0;
    for (int q = 0; q < g.numQubits(); ++q) {
        degree_sum += static_cast<std::size_t>(g.degree(q));
    }
    EXPECT_EQ(degree_sum, 2 * g.edgeCount());
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, PathProperties,
    ::testing::ValuesIn(topologyNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string s = info.param;
        for (auto &ch : s) {
            if (ch == '-' || ch == ',') {
                ch = '_';
            }
        }
        return s;
    });

} // namespace
} // namespace snail
