/**
 * @file
 * Tests for multi-mode parametric drives (paper Sec. 4.1's simultaneous
 * SNAIL pumps).
 *
 * Analytic anchors: a single resonant pair reduces to the two-mode
 * exchange; two drives on disjoint pairs factorize into parallel
 * gates; the symmetric three-mode lambda system oscillates between the
 * driven mode and the bright state at Rabi frequency g sqrt(2).
 */

#include <cmath>
#include <complex>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "pulse/multimode.hpp"

namespace snail
{
namespace
{

TEST(MultiMode, SinglePairReducesToTwoModeExchange)
{
    MultiModeDrive drive(2);
    drive.addDrive(PairDrive{0, 1, 1.0, 0.0});
    for (double t : {0.4, M_PI / 4.0, 1.3}) {
        const auto dist = drive.excitationDistribution(0, t);
        EXPECT_NEAR(dist[1], std::pow(std::sin(t), 2), 1e-7);
        EXPECT_NEAR(dist[0] + dist[1], 1.0, 1e-8);
    }
}

TEST(MultiMode, DetunedPairMatchesRabi)
{
    const double g = 0.7;
    const double delta = 1.1;
    MultiModeDrive drive(2);
    drive.addDrive(PairDrive{0, 1, g, delta});
    const double omega = std::sqrt(g * g + 0.25 * delta * delta);
    for (double t : {0.5, 1.5}) {
        const auto dist = drive.excitationDistribution(0, t);
        EXPECT_NEAR(dist[1],
                    g * g / (omega * omega) *
                        std::pow(std::sin(omega * t), 2),
                    1e-6);
    }
}

TEST(MultiMode, DisjointPairsRunInParallel)
{
    // Drives on (0,1) and (2,3) must not interact: the four-mode
    // propagator factorizes into two independent exchanges.  This is
    // the paper's "multiple gates in parallel in the same
    // neighborhood" claim in the single-excitation picture.
    const double ga = 1.0;
    const double gb = 0.6;
    MultiModeDrive drive(4);
    drive.addDrive(PairDrive{0, 1, ga, 0.0});
    drive.addDrive(PairDrive{2, 3, gb, 0.0});
    const double t = 0.9;
    const auto from0 = drive.excitationDistribution(0, t);
    EXPECT_NEAR(from0[1], std::pow(std::sin(ga * t), 2), 1e-7);
    EXPECT_NEAR(from0[2], 0.0, 1e-10);
    EXPECT_NEAR(from0[3], 0.0, 1e-10);
    const auto from2 = drive.excitationDistribution(2, t);
    EXPECT_NEAR(from2[3], std::pow(std::sin(gb * t), 2), 1e-7);
    EXPECT_NEAR(from2[0], 0.0, 1e-10);
}

TEST(MultiMode, ThreeModeBrightStateOscillation)
{
    // Symmetric lambda system: P(stay on 0) = cos^2(sqrt(2) g t) and
    // the transferred share splits evenly between modes 1 and 2.
    const double g = 1.0;
    MultiModeDrive drive(3);
    drive.addDrive(PairDrive{0, 1, g, 0.0});
    drive.addDrive(PairDrive{0, 2, g, 0.0});
    for (double t : {0.3, 0.7, 1.2}) {
        const auto dist = drive.excitationDistribution(0, t);
        const double stay = std::pow(std::cos(std::sqrt(2.0) * g * t), 2);
        EXPECT_NEAR(dist[0], stay, 1e-7) << "t = " << t;
        EXPECT_NEAR(dist[1], (1.0 - stay) / 2.0, 1e-7);
        EXPECT_NEAR(dist[2], (1.0 - stay) / 2.0, 1e-7);
    }
}

TEST(MultiMode, ThreeModeTransferTimeIsExact)
{
    const double g = 0.8;
    MultiModeDrive drive(3);
    drive.addDrive(PairDrive{0, 1, g, 0.0});
    drive.addDrive(PairDrive{0, 2, g, 0.0});
    const double t_star = threeModeTransferTime(g);
    const auto dist = drive.excitationDistribution(0, t_star);
    EXPECT_NEAR(dist[0], 0.0, 1e-8);
    EXPECT_NEAR(dist[1], 0.5, 1e-8);
    EXPECT_NEAR(dist[2], 0.5, 1e-8);
}

TEST(MultiMode, WStateEngineering)
{
    // Partial three-mode transfer engineers a W-like distribution:
    // choose t with cos^2(sqrt(2) t) = 1/3 so all three modes hold 1/3.
    MultiModeDrive drive(3);
    drive.addDrive(PairDrive{0, 1, 1.0, 0.0});
    drive.addDrive(PairDrive{0, 2, 1.0, 0.0});
    const double t =
        std::acos(std::sqrt(1.0 / 3.0)) / std::sqrt(2.0);
    const auto dist = drive.excitationDistribution(0, t);
    EXPECT_NEAR(dist[0], 1.0 / 3.0, 1e-7);
    EXPECT_NEAR(dist[1], 1.0 / 3.0, 1e-7);
    EXPECT_NEAR(dist[2], 1.0 / 3.0, 1e-7);
}

TEST(MultiMode, PropagatorUnitary)
{
    MultiModeDrive drive(4);
    drive.addDrive(PairDrive{0, 1, 1.0, 0.3});
    drive.addDrive(PairDrive{1, 2, 0.5, -0.2});
    drive.addDrive(PairDrive{2, 3, 0.8, 0.0});
    const Matrix u = drive.propagator(2.0);
    EXPECT_LT(unitarityError(u), 1e-7);
}

TEST(MultiMode, RejectsBadConfiguration)
{
    EXPECT_THROW(MultiModeDrive(1), SnailError);
    MultiModeDrive drive(3);
    EXPECT_THROW(drive.addDrive(PairDrive{0, 0, 1.0, 0.0}), SnailError);
    EXPECT_THROW(drive.addDrive(PairDrive{0, 3, 1.0, 0.0}), SnailError);
    EXPECT_THROW(drive.addDrive(PairDrive{0, 1, -1.0, 0.0}), SnailError);
    EXPECT_THROW(drive.excitationDistribution(5, 1.0), SnailError);
    EXPECT_THROW(threeModeTransferTime(0.0), SnailError);
}

} // namespace
} // namespace snail
