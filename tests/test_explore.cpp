/**
 * @file
 * Tests for the design-space exploration subsystem: content hashes on
 * Circuit and Target, the transpile cache, sweep-spec parsing and
 * expansion, engine determinism across thread counts, bit-identity
 * with the legacy codesign::Experiment series, checkpoint/resume
 * round-trips (including a torn checkpoint from a killed run), and
 * the Pareto / winner analysis.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "circuits/circuits.hpp"
#include "codesign/experiment.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "explore/checkpoint.hpp"
#include "explore/engine.hpp"
#include "explore/report.hpp"
#include "topology/registry.hpp"
#include "transpiler/pass_registry.hpp"

namespace snail
{
namespace
{

/** A small spec shared by several tests: 2 circuits x 2 targets. */
SweepSpec
smokeSpec()
{
    SweepSpec spec;
    spec.name = "test-smoke";
    spec.seed = 7;
    spec.circuits.push_back(CircuitSpec{"ghz", {8}, ""});
    spec.circuits.push_back(CircuitSpec{"qft", {8}, ""});
    TargetSpec square;
    square.topology = "square-16";
    square.basis = "cx";
    spec.targets.push_back(std::move(square));
    TargetSpec corral;
    corral.target = "corral11-16-sqiswap";
    spec.targets.push_back(std::move(corral));
    spec.pipelines.push_back("dense,stochastic-route=6");
    return spec;
}

void
expectSameMetrics(const TranspileMetrics &a, const TranspileMetrics &b,
                  const std::string &label)
{
    EXPECT_EQ(a.swaps_total, b.swaps_total) << label;
    EXPECT_DOUBLE_EQ(a.swaps_critical, b.swaps_critical) << label;
    EXPECT_EQ(a.ops_2q_pre, b.ops_2q_pre) << label;
    EXPECT_EQ(a.basis_2q_total, b.basis_2q_total) << label;
    EXPECT_DOUBLE_EQ(a.basis_2q_critical, b.basis_2q_critical) << label;
    EXPECT_DOUBLE_EQ(a.duration_total, b.duration_total) << label;
    EXPECT_DOUBLE_EQ(a.duration_critical, b.duration_critical) << label;
}

TEST(ContentHash, CircuitEqualObjectsHashEqual)
{
    EXPECT_EQ(ghz(6).contentHash(), ghz(6).contentHash());
    EXPECT_EQ(qft(8).contentHash(), qft(8).contentHash());
    // Haar-random QV blocks carry explicit matrices; same seed, same
    // content.
    EXPECT_EQ(quantumVolume(6, 6, 3).contentHash(),
              quantumVolume(6, 6, 3).contentHash());
    // The display name is not content.
    Circuit renamed = ghz(6);
    renamed.setName("something-else");
    EXPECT_EQ(renamed.contentHash(), ghz(6).contentHash());
}

TEST(ContentHash, CircuitAnyMutationChangesHash)
{
    const Circuit base = qft(6);
    const unsigned long long h0 = base.contentHash();

    Circuit extra_gate = base;
    extra_gate.h(0);
    EXPECT_NE(extra_gate.contentHash(), h0);

    // Same gate count, different operands.
    Circuit a(4);
    a.cx(0, 1);
    Circuit b(4);
    b.cx(0, 2);
    EXPECT_NE(a.contentHash(), b.contentHash());
    // Operand order matters (cx is directional).
    Circuit c(4);
    c.cx(1, 0);
    EXPECT_NE(a.contentHash(), c.contentHash());

    // Parameter change.
    Circuit r1(2);
    r1.rz(0.5, 0);
    Circuit r2(2);
    r2.rz(0.25, 0);
    EXPECT_NE(r1.contentHash(), r2.contentHash());

    // Width alone distinguishes otherwise-identical circuits.
    Circuit w4(4);
    w4.h(0);
    Circuit w5(5);
    w5.h(0);
    EXPECT_NE(w4.contentHash(), w5.contentHash());

    // Different random unitaries (explicit matrices) hash apart.
    EXPECT_NE(quantumVolume(6, 6, 3).contentHash(),
              quantumVolume(6, 6, 4).contentHash());
}

TEST(ContentHash, TargetEqualObjectsHashEqual)
{
    const CouplingGraph g = namedTopology("square-16");
    const BasisSpec sqiswap{BasisKind::SqISwap};
    EXPECT_EQ(Target::uniform(g, sqiswap).contentHash(),
              Target::uniform(g, sqiswap).contentHash());
    // Name excluded from content.
    Target renamed = Target::uniform(g, sqiswap);
    renamed.setName("my-device");
    EXPECT_EQ(renamed.contentHash(),
              Target::uniform(g, sqiswap).contentHash());
    // JSON round-trip preserves content.
    const Target original = namedTarget("corral11-16-sqiswap");
    EXPECT_EQ(targetFromJson(targetToJson(original)).contentHash(),
              original.contentHash());
}

TEST(ContentHash, TargetAnyMutationChangesHash)
{
    const CouplingGraph g = namedTopology("square-16");
    const Target base = Target::uniform(g, BasisSpec{BasisKind::SqISwap});
    const unsigned long long h0 = base.contentHash();

    // Basis change.
    EXPECT_NE(Target::uniform(g, BasisSpec{BasisKind::CNOT}).contentHash(),
              h0);
    // Default-calibration change.
    EXPECT_NE(
        Target::uniform(g, BasisSpec{BasisKind::SqISwap}, 0.99)
            .contentHash(),
        h0);

    // Per-edge override.
    Target edge_override = base;
    const auto [a, b] = g.edges().front();
    EdgeProperties props = base.defaultEdge();
    props.fidelity_2q = 0.97;
    edge_override.setEdgeProperties(a, b, props);
    EXPECT_NE(edge_override.contentHash(), h0);

    // The same override on a different edge is different content.
    Target other_edge = base;
    const auto [c, d] = g.edges().back();
    other_edge.setEdgeProperties(c, d, props);
    EXPECT_NE(other_edge.contentHash(), edge_override.contentHash());

    // Per-qubit override.
    Target qubit_override = base;
    QubitProperties qprops = base.defaultQubit();
    qprops.t2 = 150.0;
    qubit_override.setQubitProperties(3, qprops);
    EXPECT_NE(qubit_override.contentHash(), h0);

    // Topology change.
    EXPECT_NE(Target::uniform(namedTopology("corral11-16"),
                              BasisSpec{BasisKind::SqISwap})
                  .contentHash(),
              h0);
}

TEST(TranspileCache, HitMissAccountingAndKeying)
{
    TranspileCache cache;
    CacheKey key{1, 2, "dense,score", 3};
    EXPECT_FALSE(cache.lookup(key).has_value());
    EXPECT_EQ(cache.misses(), 1u);

    PointMetrics metrics;
    metrics.metrics.swaps_total = 42;
    cache.insert(key, metrics);
    const auto hit = cache.lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->metrics.swaps_total, 42u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.size(), 1u);

    // Every key component participates.
    for (const CacheKey &other :
         {CacheKey{9, 2, "dense,score", 3}, CacheKey{1, 9, "dense,score", 3},
          CacheKey{1, 2, "vf2,score", 3}, CacheKey{1, 2, "dense,score", 9}}) {
        EXPECT_FALSE(cache.lookup(other).has_value());
    }
}

TEST(SweepSpec, JsonRoundTripAndValidation)
{
    SweepSpec spec = smokeSpec();
    TargetSpec generated;
    generated.generator = "corral";
    generated.args = {8, 1, 2};
    generated.basis = "sqiswap";
    generated.label = "Corral_{1,2}";
    spec.targets.push_back(std::move(generated));

    const SweepSpec reparsed = sweepSpecFromJson(sweepSpecToJson(spec));
    EXPECT_EQ(sweepSpecToJson(reparsed), sweepSpecToJson(spec));
    EXPECT_EQ(reparsed.seed, spec.seed);
    EXPECT_EQ(reparsed.circuits.size(), spec.circuits.size());
    EXPECT_EQ(reparsed.targets.size(), spec.targets.size());

    // Width ranges expand inclusively.
    const SweepSpec ranged = sweepSpecFromJson(JsonValue::parse(R"({
        "circuits": [{"bench": "ghz",
                      "widths": {"from": 4, "to": 10, "step": 3}}],
        "targets": [{"target": "corral11-16-sqiswap"}],
        "pipelines": ["dense,basic-route"]})"));
    EXPECT_EQ(ranged.circuits[0].widths, (std::vector<int>{4, 7, 10}));

    // Typo guard: unknown keys anywhere are rejected.
    EXPECT_THROW(sweepSpecFromJson(JsonValue::parse(R"({
        "circuits": [], "targets": [], "pipelines": [], "sed": 1})")),
                 SnailError);
    EXPECT_THROW(sweepSpecFromJson(JsonValue::parse(R"({
        "circuits": [{"bensh": "ghz", "widths": [4]}],
        "targets": [{"target": "t"}], "pipelines": ["dense"]})")),
                 SnailError);
    // Exactly one selector per axis entry.
    EXPECT_THROW(sweepSpecFromJson(JsonValue::parse(R"({
        "circuits": [{"bench": "ghz", "widths": [4], "qasm": "x.qasm"}],
        "targets": [{"target": "t"}], "pipelines": ["dense"]})")),
                 SnailError);
    EXPECT_THROW(sweepSpecFromJson(JsonValue::parse(R"({
        "circuits": [{"bench": "ghz", "widths": [4]}],
        "targets": [{"target": "t", "device": "d.json"}],
        "pipelines": ["dense"]})")),
                 SnailError);
    // topology/generator targets need a basis.
    EXPECT_THROW(sweepSpecFromJson(JsonValue::parse(R"({
        "circuits": [{"bench": "ghz", "widths": [4]}],
        "targets": [{"topology": "square-16"}],
        "pipelines": ["dense"]})")),
                 SnailError);
}

TEST(SweepSpec, ExpansionSkipsOversizedWidthsAndLabelsTargets)
{
    SweepSpec spec;
    spec.circuits.push_back(CircuitSpec{"ghz", {8, 20}, ""});
    TargetSpec small;
    small.topology = "square-16";
    small.basis = "cx";
    spec.targets.push_back(std::move(small));
    TargetSpec large;
    large.target = "tree-20-sqiswap";
    large.label = "Tree";
    spec.targets.push_back(std::move(large));
    spec.pipelines.push_back("dense,basic-route");

    const auto circuits = expandCircuits(spec);
    const auto targets = expandTargets(spec);
    ASSERT_EQ(circuits.size(), 2u);
    ASSERT_EQ(targets.size(), 2u);
    EXPECT_EQ(targets[0].name(), "square-16-cx");
    EXPECT_EQ(targets[1].name(), "Tree");

    const auto points = expandSweepPoints(spec, circuits, targets);
    // width 20 fits only the tree: 2 + 1 points.
    ASSERT_EQ(points.size(), 3u);
    EXPECT_EQ(points[0].width, 8);
    EXPECT_EQ(points[1].target_label, "Tree");
    EXPECT_EQ(points[2].width, 20);
    EXPECT_EQ(points[2].target_label, "Tree");

    // Widths above the expansion cap are never built at all.
    EXPECT_EQ(expandCircuits(spec, 16).size(), 1u);

    // A too-small width is skipped, not a fatal construction error.
    SweepSpec tiny = spec;
    tiny.circuits[0].widths = {1, 8};
    EXPECT_EQ(expandCircuits(tiny).size(), 1u);

    // Duplicate target labels would shadow each other in every
    // label-keyed view (summary columns, seeds) — rejected eagerly.
    SweepSpec clashing = spec;
    clashing.targets[0].label = "Tree";
    EXPECT_THROW(expandTargets(clashing), SnailError);
}

TEST(Engine, DeterministicAcrossThreadCounts)
{
    const SweepSpec spec = smokeSpec();
    EngineOptions serial;
    serial.threads = 1;
    const SweepRun reference = runSweep(spec, serial);
    ASSERT_EQ(reference.points.size(), 4u);
    EXPECT_EQ(reference.stats.computed, 4u);

    for (unsigned threads : {4u, 16u}) {
        EngineOptions options;
        options.threads = threads;
        const SweepRun run = runSweep(spec, options);
        ASSERT_EQ(run.points.size(), reference.points.size());
        for (std::size_t i = 0; i < run.points.size(); ++i) {
            expectSameMetrics(run.metrics[i].metrics,
                              reference.metrics[i].metrics,
                              "point " + std::to_string(i) + " @ " +
                                  std::to_string(threads) + " threads");
        }
    }
}

TEST(Engine, ReproducesLegacyExperimentSeriesBitForBit)
{
    // The acceptance bar for the engine: a declarative spec over the
    // fig-13 machines regenerates the paper series exactly.  The
    // reference below is a literal replica of the pre-engine
    // sequential loop — per-cell makeBenchmark, per-cell seed, the
    // deprecated transpile() shim — NOT today's codesignSweep (which
    // is itself an engine client and would make this self-referential).
    // Scaled down — two benchmarks, three machines, two widths — so
    // the test stays fast; the full-size spec is
    // examples/sweeps/paper-fig13.json.
    SweepOptions legacy;
    legacy.widths = {6, 10};
    legacy.stochastic_trials = 10;
    const std::vector<Backend> backends = {
        makeBackend("heavy-hex-20", BasisKind::CNOT),
        makeBackend("square-16", BasisKind::Sycamore),
        makeBackend("corral11-16", BasisKind::SqISwap),
    };
    const std::vector<BenchmarkKind> benches = {
        BenchmarkKind::QuantumVolume, BenchmarkKind::Qft};
    std::vector<Series> series;
    for (BenchmarkKind bench : benches) {
        for (const Backend &machine : backends) {
            Series s;
            s.benchmark = benchmarkLabel(bench);
            s.machine = machine.name;
            for (int width : legacy.widths) {
                if (width < 2 || width > machine.topology.numQubits()) {
                    continue;
                }
                const Circuit circuit =
                    makeBenchmark(bench, width, legacy.seed);
                TranspileOptions topts;
                topts.layout = legacy.layout;
                topts.router = legacy.router;
                topts.stochastic_trials = legacy.stochastic_trials;
                topts.basis = machine.basis;
                topts.seed =
                    legacy.seed ^
                    (static_cast<unsigned long long>(width) << 32) ^
                    std::hash<std::string>{}(machine.name) ^
                    static_cast<unsigned long long>(bench);
                const TranspileResult r =
                    transpile(circuit, machine.topology, topts);
                s.points.push_back(SeriesPoint{width, r.metrics});
            }
            series.push_back(std::move(s));
        }
    }
    // Today's experiment layer (now an engine client) still matches
    // the sequential reference...
    const std::vector<Series> via_experiment =
        codesignSweep(benches, backends, legacy);
    ASSERT_EQ(via_experiment.size(), series.size());
    for (std::size_t si = 0; si < series.size(); ++si) {
        ASSERT_EQ(via_experiment[si].points.size(),
                  series[si].points.size());
        for (std::size_t pi = 0; pi < series[si].points.size(); ++pi) {
            expectSameMetrics(via_experiment[si].points[pi].metrics,
                              series[si].points[pi].metrics,
                              "experiment " + series[si].benchmark +
                                  "/" + series[si].machine);
        }
    }
    // ...and so does the declarative spec path.

    SweepSpec spec;
    spec.seed = legacy.seed;
    spec.circuits.push_back(CircuitSpec{"qv", {6, 10}, ""});
    spec.circuits.push_back(CircuitSpec{"qft", {6, 10}, ""});
    for (const Backend &backend : backends) {
        TargetSpec target;
        target.target = backend.name;
        spec.targets.push_back(std::move(target));
    }
    spec.pipelines.push_back("dense,stochastic-route=10");
    const SweepRun run = runSweep(spec, EngineOptions{});

    std::size_t matched = 0;
    for (const Series &s : series) {
        for (const SeriesPoint &point : s.points) {
            for (std::size_t i = 0; i < run.points.size(); ++i) {
                if (run.points[i].circuit_label == s.benchmark &&
                    run.points[i].target_label == s.machine &&
                    run.points[i].width == point.width) {
                    expectSameMetrics(run.metrics[i].metrics,
                                      point.metrics,
                                      s.benchmark + "/" + s.machine +
                                          "/w" +
                                          std::to_string(point.width));
                    ++matched;
                }
            }
        }
    }
    // Every legacy cell found its engine twin and vice versa.
    EXPECT_EQ(matched, run.points.size());
    std::size_t legacy_cells = 0;
    for (const Series &s : series) {
        legacy_cells += s.points.size();
    }
    EXPECT_EQ(matched, legacy_cells);
}

TEST(Engine, CacheDeduplicatesRepeatedPointsAcrossCalls)
{
    const SweepSpec spec = smokeSpec();
    const auto circuits = expandCircuits(spec);
    const auto targets = expandTargets(spec);
    const PassManager pm = passManagerFromSpec(spec.pipelines[0]);

    std::vector<ExploreJob> jobs;
    for (const SweepPoint &point :
         expandSweepPoints(spec, circuits, targets)) {
        ExploreJob job;
        job.circuit = &circuits[point.circuit_index].circuit;
        job.target = &targets[point.target_index];
        job.pipeline = &pm;
        job.pipeline_spec = point.pipeline;
        job.seed = point.seed;
        jobs.push_back(std::move(job));
    }

    TranspileCache cache;
    EvaluationStats cold;
    const auto first = evaluateJobs(jobs, cache, EngineOptions{}, &cold);
    EXPECT_EQ(cold.computed, jobs.size());
    EXPECT_EQ(cold.from_cache, 0u);

    EvaluationStats warm;
    const auto second = evaluateJobs(jobs, cache, EngineOptions{}, &warm);
    EXPECT_EQ(warm.computed, 0u);
    EXPECT_EQ(warm.from_cache, jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        expectSameMetrics(first[i].metrics, second[i].metrics,
                          "cached point " + std::to_string(i));
    }
}

TEST(Checkpoint, ResumeSkipsCompletedPointsAndReportsAreByteIdentical)
{
    const std::string path =
        testing::TempDir() + "test_explore_resume.jsonl";
    std::remove(path.c_str());
    const SweepSpec spec = smokeSpec();

    // Full run, checkpointing as it goes.
    EngineOptions checkpointed;
    checkpointed.checkpoint_path = path;
    const SweepRun full = runSweep(spec, checkpointed);
    EXPECT_EQ(full.stats.computed, full.points.size());

    // Simulate a kill after two completed points plus a torn write:
    // keep the first two checkpoint lines and half of the third.
    std::vector<std::string> lines;
    {
        std::ifstream in(path);
        std::string line;
        while (std::getline(in, line)) {
            lines.push_back(line);
        }
    }
    ASSERT_EQ(lines.size(), full.points.size());
    {
        std::ofstream out(path, std::ios::trunc);
        out << lines[0] << '\n' << lines[1] << '\n'
            << lines[2].substr(0, lines[2].size() / 2);
    }

    EngineOptions resume = checkpointed;
    resume.resume = true;
    const SweepRun resumed = runSweep(spec, resume);
    EXPECT_EQ(resumed.stats.restored, 2u);
    EXPECT_EQ(resumed.stats.from_cache, 2u);
    EXPECT_EQ(resumed.stats.computed, full.points.size() - 2);

    // The resumed run's reports are byte-identical to the full run's.
    std::ostringstream full_csv, resumed_csv, full_json, resumed_json;
    writeSweepCsv(full_csv, full);
    writeSweepCsv(resumed_csv, resumed);
    EXPECT_EQ(full_csv.str(), resumed_csv.str());
    writeSweepJson(full_json, full);
    writeSweepJson(resumed_json, resumed);
    EXPECT_EQ(full_json.str(), resumed_json.str());

    // A second resume computes nothing at all.
    const SweepRun again = runSweep(spec, resume);
    EXPECT_EQ(again.stats.computed, 0u);
    EXPECT_EQ(again.stats.from_cache, again.points.size());
    std::remove(path.c_str());
}

TEST(Checkpoint, MetricsRoundTripExactly)
{
    PointMetrics point;
    point.metrics.swaps_total = 31;
    point.metrics.swaps_critical = 19.0;
    point.metrics.ops_2q_pre = 59;
    point.metrics.basis_2q_total = 149;
    point.metrics.basis_2q_critical = 87.0;
    point.metrics.duration_total = 62.5;
    point.metrics.duration_critical = 0.1 + 0.2; // not exactly 0.3
    point.fidelity_predicted = 0.87654321;
    point.has_fidelity = true;

    const PointMetrics back =
        pointMetricsFromJson(pointMetricsToJson(point));
    expectSameMetrics(back.metrics, point.metrics, "round trip");
    EXPECT_TRUE(back.has_fidelity);
    EXPECT_DOUBLE_EQ(back.fidelity_predicted, point.fidelity_predicted);

    PointMetrics no_fidelity;
    EXPECT_FALSE(
        pointMetricsFromJson(pointMetricsToJson(no_fidelity)).has_fidelity);
}

TEST(Analysis, WinnersScoreboardAndParetoFrontier)
{
    // QV on heavy-hex vs corral: the corral co-design should win every
    // workload on 2Q count (the paper's Fig. 13 conclusion).
    SweepSpec spec;
    spec.circuits.push_back(CircuitSpec{"qv", {8, 12}, ""});
    TargetSpec hh;
    hh.target = "heavy-hex-20-cx";
    spec.targets.push_back(std::move(hh));
    TargetSpec corral;
    corral.target = "corral11-16-sqiswap";
    spec.targets.push_back(std::move(corral));
    spec.pipelines.push_back("dense,stochastic-route=6");
    const SweepRun run = runSweep(spec, EngineOptions{});

    const auto winners = winnersPerWorkload(run, "basis_2q_total");
    ASSERT_EQ(winners.size(), 2u);
    for (const WorkloadWinner &winner : winners) {
        EXPECT_EQ(run.points[winner.point_index].target_label,
                  "corral11-16-sqiswap")
            << winner.circuit_label << " w" << winner.width;
    }
    const auto scores = targetScoreboard(run, winners);
    ASSERT_EQ(scores.size(), 2u);
    EXPECT_EQ(scores[0].target_label, "heavy-hex-20-cx");
    EXPECT_EQ(scores[0].wins, 0u);
    EXPECT_EQ(scores[1].wins, 2u);

    // The corral dominates on both objectives, so the frontier holds
    // exactly the two corral points.
    const auto frontier = paretoFrontier(
        run, {{"basis_2q_total", false}, {"duration_critical", false}});
    ASSERT_EQ(frontier.size(), 2u);
    for (std::size_t index : frontier) {
        EXPECT_EQ(run.points[index].target_label, "corral11-16-sqiswap");
    }

    EXPECT_THROW(winnersPerWorkload(run, "no-such-metric"), SnailError);
    // fidelity_predicted is undefined without a score-fidelity
    // pipeline: no point competes, so no group produces a winner (the
    // summary degrades gracefully instead of failing mid-print).
    EXPECT_TRUE(winnersPerWorkload(run, "fidelity_predicted").empty());
    EXPECT_THROW(pointMetricValue(run.metrics[0], "fidelity_predicted"),
                 SnailError);
    EXPECT_FALSE(pointHasMetric(run.metrics[0], "fidelity_predicted"));
    EXPECT_TRUE(pointHasMetric(run.metrics[0], "swaps_total"));
    EXPECT_THROW(pointHasMetric(run.metrics[0], "no-such-metric"),
                 SnailError);
}

TEST(ThreadPool, ResolvesCountsAndPropagatesFirstError)
{
    EXPECT_EQ(resolveThreadCount(4, 100), 4u);
    EXPECT_EQ(resolveThreadCount(8, 3), 3u);
    EXPECT_GE(resolveThreadCount(0, 100), 1u);

    std::vector<int> hits(100, 0);
    parallelFor(hits.size(), 8, [&](std::size_t i) { hits[i] += 1; });
    for (int h : hits) {
        EXPECT_EQ(h, 1);
    }

    try {
        parallelFor(10, 4, [&](std::size_t i) {
            if (i >= 5) {
                SNAIL_THROW("boom at " << i);
            }
        });
        FAIL() << "expected the body exception to propagate";
    } catch (const SnailError &e) {
        // Lowest failing index wins, regardless of completion order.
        EXPECT_STREQ(e.what(), "boom at 5");
    }
}

} // namespace
} // namespace snail
