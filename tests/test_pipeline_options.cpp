/**
 * @file
 * Integration tests for the transpile pipeline's extended options:
 * peephole optimization levels, VF2-or-dense layout, trailing-SWAP
 * elision, and the lookahead router — alone and combined.
 *
 * The oracle throughout is simulated equivalence of the routed circuit
 * under the reported layouts.
 */

#include <gtest/gtest.h>

#include "circuits/circuits.hpp"
#include "common/rng.hpp"
#include "sim/equivalence.hpp"
#include "topology/registry.hpp"
#include "transpiler/pipeline.hpp"

namespace snail
{
namespace
{

/** A workload with deliberate redundancy for the optimizer to find. */
Circuit
redundantWorkload(int n)
{
    Circuit c(n, "redundant");
    for (int q = 0; q < n; ++q) {
        c.h(q);
        c.h(q); // cancels at level 2
    }
    c.extend(qft(n));
    c.cx(0, 1);
    c.cx(0, 1); // cancels at level 1
    return c;
}

TEST(PipelineOptions, OptimizationReducesTwoQubitWork)
{
    const CouplingGraph device = namedTopology("square-16");
    const Circuit workload = redundantWorkload(8);

    TranspileOptions plain;
    plain.seed = 5;
    TranspileOptions optimized = plain;
    optimized.optimization_level = 2;

    const TranspileResult a = transpile(workload, device, plain);
    const TranspileResult b = transpile(workload, device, optimized);
    EXPECT_LE(b.metrics.ops_2q_pre, a.metrics.ops_2q_pre);
    EXPECT_LE(b.metrics.basis_2q_total, a.metrics.basis_2q_total);
}

TEST(PipelineOptions, OptimizedRoutingStaysEquivalent)
{
    const CouplingGraph device = namedTopology("tree-20");
    // Use a redundancy-free workload so the optimized circuit equals
    // the input unitary trivially and the equivalence check applies.
    const Circuit workload = qft(6);
    TranspileOptions opts;
    opts.optimization_level = 2;
    opts.seed = 7;
    const TranspileResult r = transpile(workload, device, opts);
    Rng rng(3);
    EXPECT_TRUE(routedCircuitEquivalent(workload, r.routed,
                                        r.initial_layout.v2p(),
                                        r.final_layout.v2p(), 3, rng));
}

TEST(PipelineOptions, AllExtensionsTogether)
{
    const CouplingGraph device = namedTopology("corral12-16");
    const Circuit workload = quantumVolume(6, 6, 11);
    TranspileOptions opts;
    opts.layout = LayoutKind::Vf2OrDense;
    opts.router = RouterKind::Lookahead;
    opts.optimization_level = 2;
    opts.elide_trailing_swaps = true;
    opts.basis = BasisSpec{BasisKind::SqISwap};
    opts.seed = 13;
    const TranspileResult r = transpile(workload, device, opts);

    for (const auto &op : r.routed.instructions()) {
        if (op.numQubits() == 2) {
            EXPECT_TRUE(device.hasEdge(op.q0(), op.q1()));
        }
    }
    Rng rng(17);
    EXPECT_TRUE(routedCircuitEquivalent(workload, r.routed,
                                        r.initial_layout.v2p(),
                                        r.final_layout.v2p(), 3, rng));
}

TEST(PipelineOptions, ElisionNeverIncreasesSwaps)
{
    for (const char *topo : {"square-16", "tree-20", "heavy-hex-20"}) {
        const CouplingGraph device = namedTopology(topo);
        const Circuit workload = qft(8);
        TranspileOptions plain;
        plain.seed = 19;
        TranspileOptions elided = plain;
        elided.elide_trailing_swaps = true;
        const TranspileResult a = transpile(workload, device, plain);
        const TranspileResult b = transpile(workload, device, elided);
        EXPECT_LE(b.metrics.swaps_total, a.metrics.swaps_total) << topo;
        EXPECT_LE(b.metrics.duration_critical,
                  a.metrics.duration_critical + 1e-9)
            << topo;
    }
}

TEST(PipelineOptions, DefaultsReproducePaperFlow)
{
    // The default options must not silently enable any extension:
    // transpiling twice with an explicit all-off config and with the
    // defaults must agree bit for bit on the metrics.
    const CouplingGraph device = namedTopology("hypercube-16");
    const Circuit workload = qaoaVanilla(10, 3);

    TranspileOptions defaults;
    TranspileOptions explicit_off;
    explicit_off.layout = LayoutKind::Dense;
    explicit_off.router = RouterKind::Stochastic;
    explicit_off.optimization_level = 0;
    explicit_off.elide_trailing_swaps = false;

    const TranspileResult a = transpile(workload, device, defaults);
    const TranspileResult b = transpile(workload, device, explicit_off);
    EXPECT_EQ(a.metrics.swaps_total, b.metrics.swaps_total);
    EXPECT_EQ(a.metrics.basis_2q_total, b.metrics.basis_2q_total);
    EXPECT_DOUBLE_EQ(a.metrics.duration_critical,
                     b.metrics.duration_critical);
}

TEST(PipelineOptions, Vf2FallsBackGracefully)
{
    // A dense workload that cannot embed: Vf2OrDense must fall back to
    // DenseLayout and still produce a valid result.
    const CouplingGraph device = namedTopology("heavy-hex-20");
    const Circuit workload = quantumVolume(12, 12, 23);
    TranspileOptions opts;
    opts.layout = LayoutKind::Vf2OrDense;
    opts.seed = 29;
    const TranspileResult r = transpile(workload, device, opts);
    EXPECT_GT(r.metrics.swaps_total, 0u);
    Rng rng(31);
    EXPECT_TRUE(routedCircuitEquivalent(workload, r.routed,
                                        r.initial_layout.v2p(),
                                        r.final_layout.v2p(), 2, rng));
}

} // namespace
} // namespace snail
