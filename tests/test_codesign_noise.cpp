/**
 * @file
 * Tests for the codesign noise bridge (basis counts -> per-op noise).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "circuits/circuits.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "fidelity/codesign_noise.hpp"
#include "topology/registry.hpp"
#include "transpiler/pipeline.hpp"

namespace snail
{
namespace
{

TEST(CodesignNoise, OneQubitGatesAreFreeByDefault)
{
    Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    c.rz(0.3, 1);
    const auto per_op =
        basisPerOpNoise(c, BasisSpec{BasisKind::CNOT}, 0.01);
    ASSERT_EQ(per_op.size(), 3u);
    EXPECT_DOUBLE_EQ(per_op[0].p_error, 0.0);
    EXPECT_DOUBLE_EQ(per_op[2].p_error, 0.0);
    // A CX in the CNOT basis is one pulse.
    EXPECT_NEAR(per_op[1].p_error, 0.01, 1e-12);
    EXPECT_DOUBLE_EQ(per_op[1].duration, 1.0);
}

TEST(CodesignNoise, CountsCompoundErrorProbability)
{
    // A SWAP needs 3 CNOT pulses: p = 1 - (1-p0)^3.
    Circuit c(2);
    c.swap(0, 1);
    const double p0 = 0.02;
    const auto per_op = basisPerOpNoise(c, BasisSpec{BasisKind::CNOT}, p0);
    EXPECT_NEAR(per_op[0].p_error, 1.0 - std::pow(1.0 - p0, 3), 1e-12);
    EXPECT_DOUBLE_EQ(per_op[0].duration, 3.0);
}

TEST(CodesignNoise, SqiswapHalvesDurations)
{
    Circuit c(2);
    c.swap(0, 1); // 3 pulses in either basis
    const auto cnot =
        basisPerOpNoise(c, BasisSpec{BasisKind::CNOT}, 0.01);
    const auto snail =
        basisPerOpNoise(c, BasisSpec{BasisKind::SqISwap}, 0.01);
    EXPECT_DOUBLE_EQ(cnot[0].duration, 3.0);
    EXPECT_DOUBLE_EQ(snail[0].duration, 1.5); // 3 pulses x 1/2 unit
}

TEST(CodesignNoise, OneQubitErrorsOptIn)
{
    Circuit c(1);
    c.h(0);
    const auto per_op = basisPerOpNoise(c, BasisSpec{BasisKind::CNOT},
                                        0.01, 0.002);
    EXPECT_DOUBLE_EQ(per_op[0].p_error, 0.002);
}

TEST(CodesignNoise, RejectsBadPulseError)
{
    Circuit c(2);
    c.cx(0, 1);
    EXPECT_THROW(basisPerOpNoise(c, BasisSpec{BasisKind::CNOT}, 1.0),
                 SnailError);
    EXPECT_THROW(basisPerOpNoise(c, BasisSpec{BasisKind::CNOT}, -0.1),
                 SnailError);
}

TEST(CodesignNoise, EstimateOrdersCoDesignsLikeSurrogates)
{
    // At matched pulse error, the design with fewer/shorter pulses
    // must win the simulated fidelity (statistically).
    const Circuit workload = quantumVolume(6, 6, 5);
    const double pulse_error = 0.01;

    auto fidelity_on = [&](const char *topo, BasisKind basis) {
        const CouplingGraph device = namedTopology(topo);
        TranspileOptions opts;
        opts.basis = BasisSpec{basis};
        opts.seed = 3;
        const TranspileResult r = transpile(workload, device, opts);
        Rng rng(99);
        return codesignNoiseEstimate(r.routed, opts.basis, pulse_error,
                                     0.0, 80, rng);
    };

    // 16-qubit devices keep the statevectors cheap.
    const NoiseEstimate lattice = fidelity_on("square-16",
                                              BasisKind::CNOT);
    const NoiseEstimate corral = fidelity_on("corral11-16",
                                             BasisKind::SqISwap);
    EXPECT_GT(corral.mean_fidelity,
              lattice.mean_fidelity - 2 * (corral.standard_error +
                                           lattice.standard_error));
    EXPECT_GT(corral.no_error_prob, lattice.no_error_prob);
}

TEST(CodesignNoise, ZeroErrorIsPerfect)
{
    const Circuit workload = ghz(5);
    const CouplingGraph device = namedTopology("corral11-16");
    TranspileOptions opts;
    opts.basis = BasisSpec{BasisKind::SqISwap};
    const TranspileResult r = transpile(workload, device, opts);
    Rng rng(1);
    const NoiseEstimate est =
        codesignNoiseEstimate(r.routed, opts.basis, 0.0, 0.0, 10, rng);
    EXPECT_NEAR(est.mean_fidelity, 1.0, 1e-10);
    EXPECT_DOUBLE_EQ(est.no_error_prob, 1.0);
}

} // namespace
} // namespace snail
