/**
 * @file
 * Unit tests for the statevector simulator: known state evolutions, the
 * operand-ordering convention, unitary building, and the routed-circuit
 * equivalence checker that later validates the transpiler.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "linalg/random_unitary.hpp"
#include "sim/equivalence.hpp"
#include "sim/statevector.hpp"
#include "sim/unitary_builder.hpp"

namespace snail
{
namespace
{

TEST(Statevector, StartsInGroundState)
{
    Statevector sv(3);
    EXPECT_NEAR(std::abs(sv.amplitudes()[0] - Complex(1, 0)), 0.0, 1e-15);
    EXPECT_NEAR(sv.normSquared(), 1.0, 1e-15);
}

TEST(Statevector, HadamardCreatesSuperposition)
{
    Circuit c(1);
    c.h(0);
    Statevector sv(1);
    sv.run(c);
    const double r = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(std::abs(sv.amplitudes()[0] - Complex(r, 0)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(sv.amplitudes()[1] - Complex(r, 0)), 0.0, 1e-12);
}

TEST(Statevector, BellState)
{
    Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    Statevector sv(2);
    sv.run(c);
    const double r = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(std::abs(sv.amplitudes()[0]), r, 1e-12);
    EXPECT_NEAR(std::abs(sv.amplitudes()[3]), r, 1e-12);
    EXPECT_NEAR(std::abs(sv.amplitudes()[1]), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(sv.amplitudes()[2]), 0.0, 1e-12);
}

TEST(Statevector, CnotOperandOrdering)
{
    // Control is the first operand: cx(0, 1) flips qubit 1 when qubit 0
    // is |1>.
    Circuit c(2);
    c.x(0);
    c.cx(0, 1);
    Statevector sv(2);
    sv.run(c);
    // Expect |11> = index 3 (bit0 = qubit0, bit1 = qubit1).
    EXPECT_NEAR(std::abs(sv.amplitudes()[3]), 1.0, 1e-12);

    Circuit c2(2);
    c2.x(1);
    c2.cx(0, 1);  // control qubit 0 is |0>: nothing happens
    Statevector sv2(2);
    sv2.run(c2);
    EXPECT_NEAR(std::abs(sv2.amplitudes()[2]), 1.0, 1e-12);
}

TEST(Statevector, SwapMovesAmplitude)
{
    Circuit c(3);
    c.x(0);
    c.swap(0, 2);
    Statevector sv(3);
    sv.run(c);
    EXPECT_NEAR(std::abs(sv.amplitudes()[4]), 1.0, 1e-12);  // |100>
}

TEST(Statevector, NormPreservedUnderRandomCircuit)
{
    Rng rng(21);
    Circuit c(4);
    for (int i = 0; i < 30; ++i) {
        const int a = static_cast<int>(rng.index(4));
        int b = static_cast<int>(rng.index(4));
        while (b == a) {
            b = static_cast<int>(rng.index(4));
        }
        c.unitary4(haarUnitary(4, rng), a, b);
    }
    Statevector sv(4);
    sv.run(c);
    EXPECT_NEAR(sv.normSquared(), 1.0, 1e-10);
}

TEST(UnitaryBuilder, MatchesGateMatrixOnTwoQubits)
{
    // Circuit cx(1, 0): control = qubit 1 (high bit of the matrix basis is
    // the first operand).
    Circuit c(2);
    c.cx(1, 0);
    const Matrix u = circuitUnitary(c);
    // In simulator index order (bit1 bit0): |10> -> |11>, i.e. columns 2
    // and 3 swapped.
    Matrix expected = Matrix::identity(4);
    expected(2, 2) = 0;
    expected(3, 3) = 0;
    expected(2, 3) = 1;
    expected(3, 2) = 1;
    EXPECT_TRUE(allClose(u, expected, 1e-12));
}

TEST(UnitaryBuilder, ComposesSequentially)
{
    Rng rng(22);
    const Matrix a = haarUnitary(4, rng);
    const Matrix b = haarUnitary(4, rng);
    Circuit c(2);
    c.unitary4(a, 1, 0);
    c.unitary4(b, 1, 0);
    // With operands (1, 0) the gate matrix basis coincides with the
    // simulator index basis, so the circuit unitary is b * a.
    EXPECT_TRUE(allClose(circuitUnitary(c), b * a, 1e-10));
}

TEST(Equivalence, IdenticalCircuitsMatch)
{
    Circuit a(3);
    a.h(0);
    a.cx(0, 1);
    a.cx(1, 2);
    EXPECT_TRUE(circuitsEquivalent(a, a));
}

TEST(Equivalence, GlobalPhaseIgnored)
{
    Circuit a(1);
    a.rz(1.0, 0);
    Circuit b(1);
    b.p(1.0, 0);  // p = rz up to global phase
    EXPECT_TRUE(circuitsEquivalent(a, b));
}

TEST(Equivalence, DetectsDifference)
{
    Circuit a(2);
    a.cx(0, 1);
    Circuit b(2);
    b.cx(1, 0);
    EXPECT_FALSE(circuitsEquivalent(a, b));
}

TEST(Equivalence, CcxDecompositionIsToffoli)
{
    Circuit c(3);
    c.ccxDecomposed(0, 1, 2);
    const Matrix u = circuitUnitary(c);
    // Toffoli in simulator ordering: flips bit 2 when bits 0 and 1 set.
    Matrix expected = Matrix::identity(8);
    expected(3, 3) = 0;
    expected(7, 7) = 0;
    expected(3, 7) = 1;
    expected(7, 3) = 1;
    EXPECT_TRUE(equalUpToGlobalPhase(u, expected, 1e-9));
}

TEST(Equivalence, RoutedIdentityLayout)
{
    // Trivial routing: same circuit, identity layouts.
    Circuit orig(3);
    orig.h(0);
    orig.cx(0, 1);
    orig.cx(1, 2);
    Rng rng(30);
    EXPECT_TRUE(routedCircuitEquivalent(orig, orig, {0, 1, 2}, {0, 1, 2}, 4,
                                        rng));
}

TEST(Equivalence, RoutedWithManualSwap)
{
    // Original wants cx(0, 2); device is a line 0-1-2, so route with a
    // swap: swap(0,1); cx(1,2).  Virtual 0 ends at physical 1.
    Circuit orig(3);
    orig.cx(0, 2);
    Circuit routed(3);
    routed.swap(0, 1);
    routed.cx(1, 2);
    Rng rng(31);
    EXPECT_TRUE(routedCircuitEquivalent(orig, routed, {0, 1, 2}, {1, 0, 2},
                                        4, rng));
    // Wrong final layout must fail.
    EXPECT_FALSE(routedCircuitEquivalent(orig, routed, {0, 1, 2}, {0, 1, 2},
                                         4, rng));
}

TEST(Equivalence, RoutedWithSpectatorAncilla)
{
    // 2 virtual qubits on a 4-qubit device.
    Circuit orig(2);
    orig.h(0);
    orig.cx(0, 1);
    Circuit routed(4);
    routed.h(1);
    routed.cx(1, 3);
    Rng rng(32);
    EXPECT_TRUE(
        routedCircuitEquivalent(orig, routed, {1, 3}, {1, 3}, 4, rng));
}

} // namespace
} // namespace snail
