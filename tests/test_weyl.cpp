/**
 * @file
 * Unit tests for the Weyl-chamber machinery: magic-basis facts, canonical
 * coordinates of every reference gate, invariance under local dressing,
 * the full Cartan (KAK) factorization, and the analytic basis-count rules
 * the paper's evaluation relies on (Observation 1).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "linalg/random_unitary.hpp"
#include "weyl/basis_counts.hpp"
#include "weyl/coordinates.hpp"
#include "weyl/magic.hpp"

namespace snail
{
namespace
{

constexpr double kQ = M_PI / 4.0;  // pi/4
constexpr double kE = M_PI / 8.0;  // pi/8

TEST(Magic, BasisIsUnitary)
{
    EXPECT_TRUE(magicBasis().isUnitary(1e-12));
}

TEST(Magic, LocalGatesBecomeRealOrthogonal)
{
    Rng rng(40);
    for (int i = 0; i < 20; ++i) {
        const Matrix a = haarSpecialUnitary(2, rng);
        const Matrix b = haarSpecialUnitary(2, rng);
        const Matrix local = toMagicBasis(kron(a, b));
        EXPECT_TRUE(local.isReal(1e-9)) << "iteration " << i;
        EXPECT_TRUE(local.isUnitary(1e-9));
    }
}

TEST(Magic, DiagonalsAreSignVectors)
{
    const MagicDiagonals &d = magicDiagonals();
    for (int j = 0; j < 4; ++j) {
        EXPECT_NEAR(std::abs(d.xx[j]), 1.0, 1e-12);
        EXPECT_NEAR(std::abs(d.yy[j]), 1.0, 1e-12);
        EXPECT_NEAR(std::abs(d.zz[j]), 1.0, 1e-12);
        // XX * YY = -ZZ elementwise (Pauli algebra).
        EXPECT_NEAR(d.xx[j] * d.yy[j], -d.zz[j], 1e-12);
    }
}

struct NamedGate
{
    const char *name;
    Gate gate;
    WeylCoords expected;
};

class KnownCoordinates : public ::testing::TestWithParam<NamedGate>
{
};

TEST_P(KnownCoordinates, MatchesReference)
{
    const NamedGate &ng = GetParam();
    const WeylCoords w = weylCoordinates(ng.gate);
    EXPECT_TRUE(w.isClose(ng.expected, 1e-8))
        << ng.name << ": got (" << w.a << ", " << w.b << ", " << w.c << ")";
}

INSTANTIATE_TEST_SUITE_P(
    ReferenceGates, KnownCoordinates,
    ::testing::Values(
        NamedGate{"identity", gates::canonical(0, 0, 0),
                  WeylCoords{0, 0, 0}},
        NamedGate{"cnot", gates::cx(), WeylCoords{kQ, 0, 0}},
        NamedGate{"cz", gates::cz(), WeylCoords{kQ, 0, 0}},
        NamedGate{"iswap", gates::iswap(), WeylCoords{kQ, kQ, 0}},
        NamedGate{"swap", gates::swapGate(), WeylCoords{kQ, kQ, kQ}},
        NamedGate{"sqiswap", gates::sqiswap(), WeylCoords{kE, kE, 0}},
        NamedGate{"bgate", gates::bgate(), WeylCoords{kQ, kE, 0}},
        NamedGate{"cr90", gates::crossRes(M_PI / 2.0),
                  WeylCoords{kQ, 0, 0}},
        NamedGate{"root4", gates::nrootIswap(4.0),
                  WeylCoords{M_PI / 16.0, M_PI / 16.0, 0}}),
    [](const ::testing::TestParamInfo<NamedGate> &info) {
        return info.param.name;
    });

TEST(Weyl, SycamoreCoordinates)
{
    // SYC = FSIM(pi/2, pi/6): iSWAP-strength exchange plus a CPhase(pi/6),
    // giving coordinates (pi/4, pi/4, pi/24) up to chamber symmetry.
    const WeylCoords w = weylCoordinates(gates::sycamore().matrix());
    EXPECT_NEAR(w.a, kQ, 1e-8);
    EXPECT_NEAR(w.b, kQ, 1e-8);
    EXPECT_NEAR(std::abs(w.c), M_PI / 24.0, 1e-8);
}

TEST(Weyl, CPhaseSweepStaysOnCnotAxis)
{
    for (double theta : {0.1, 0.5, 1.0, 2.0, 3.0}) {
        const WeylCoords w =
            weylCoordinates(gates::cphase(theta).matrix());
        EXPECT_NEAR(w.b, 0.0, 1e-8) << "theta = " << theta;
        EXPECT_NEAR(w.c, 0.0, 1e-8);
        EXPECT_NEAR(w.a, std::abs(theta) / 4.0, 1e-8);
    }
}

TEST(Weyl, LocalDressingInvariance)
{
    Rng rng(41);
    for (int i = 0; i < 30; ++i) {
        const Matrix u = haarUnitary(4, rng);
        const WeylCoords base = weylCoordinates(u);
        const Matrix dressed = kron(haarUnitary(2, rng), haarUnitary(2, rng)) *
                               u *
                               kron(haarUnitary(2, rng), haarUnitary(2, rng));
        const WeylCoords w = weylCoordinates(dressed);
        EXPECT_TRUE(w.isClose(base, 1e-6))
            << "iteration " << i << ": (" << base.a << "," << base.b << ","
            << base.c << ") vs (" << w.a << "," << w.b << "," << w.c << ")";
    }
}

TEST(Weyl, CoordinatesLieInChamber)
{
    Rng rng(42);
    for (int i = 0; i < 50; ++i) {
        const WeylCoords w = weylCoordinates(haarUnitary(4, rng));
        EXPECT_LE(w.a, kQ + 1e-9);
        EXPECT_GE(w.a, w.b - 1e-9);
        EXPECT_GE(w.b, std::abs(w.c) - 1e-9);
        EXPECT_GE(w.b, -1e-9);
    }
}

TEST(Weyl, MagicDecompositionReconstructs)
{
    Rng rng(43);
    for (int i = 0; i < 30; ++i) {
        const Matrix u = haarUnitary(4, rng);
        const MagicDecomposition d = magicDecompose(u);
        const Matrix can =
            gates::canonical(d.a_rep, d.b_rep, d.c_rep).matrix();
        const Matrix rebuilt =
            (d.k1 * can * d.k2) * std::polar(1.0, d.phase);
        EXPECT_TRUE(allClose(rebuilt, u, 1e-7)) << "iteration " << i;
    }
}

TEST(Weyl, LocalFactorsAreTensorProducts)
{
    Rng rng(44);
    const Matrix u = haarUnitary(4, rng);
    const MagicDecomposition d = magicDecompose(u);
    // K1 and K2 must be local: conjugating into the magic basis gives a
    // real orthogonal matrix.
    EXPECT_TRUE(toMagicBasis(d.k1).isReal(1e-7));
    EXPECT_TRUE(toMagicBasis(d.k2).isReal(1e-7));
}

TEST(Weyl, CanonicalizeHandlesMirrorClasses)
{
    // A class with genuinely negative c must keep its sign.
    const WeylCoords w = canonicalize(0.2 * M_PI, 0.1 * M_PI, -0.05 * M_PI);
    EXPECT_NEAR(w.a, 0.2 * M_PI, 1e-10);
    EXPECT_NEAR(w.b, 0.1 * M_PI, 1e-10);
    EXPECT_NEAR(w.c, -0.05 * M_PI, 1e-10);
    // On the a = pi/4 boundary both signs are equivalent; the +c
    // representative is canonical.
    const WeylCoords b = canonicalize(kQ, 0.1 * M_PI, -0.05 * M_PI);
    EXPECT_NEAR(b.c, 0.05 * M_PI, 1e-10);
}

TEST(Weyl, LocallyEquivalentGates)
{
    EXPECT_TRUE(locallyEquivalent(gates::cx().matrix(),
                                  gates::cz().matrix()));
    EXPECT_FALSE(locallyEquivalent(gates::cx().matrix(),
                                   gates::iswap().matrix()));
}

TEST(BasisCounts, ReferenceClassCounts)
{
    const WeylCoords id{0, 0, 0};
    const WeylCoords cnot{kQ, 0, 0};
    const WeylCoords iswap{kQ, kQ, 0};
    const WeylCoords swap{kQ, kQ, kQ};
    const WeylCoords sqisw{kE, kE, 0};

    EXPECT_EQ(cnotCount(id), 0);
    EXPECT_EQ(cnotCount(cnot), 1);
    EXPECT_EQ(cnotCount(iswap), 2);
    EXPECT_EQ(cnotCount(swap), 3);
    EXPECT_EQ(cnotCount(sqisw), 2);

    EXPECT_EQ(sqiswapCount(id), 0);
    EXPECT_EQ(sqiswapCount(sqisw), 1);
    EXPECT_EQ(sqiswapCount(cnot), 2);
    EXPECT_EQ(sqiswapCount(iswap), 2);
    EXPECT_EQ(sqiswapCount(swap), 3);

    EXPECT_EQ(iswapCount(id), 0);
    EXPECT_EQ(iswapCount(iswap), 1);
    EXPECT_EQ(iswapCount(cnot), 2);
    EXPECT_EQ(iswapCount(swap), 3);

    EXPECT_EQ(sycamoreCount(id), 0);
    EXPECT_EQ(sycamoreCount(weylCoordinates(gates::sycamore().matrix())), 1);
    EXPECT_EQ(sycamoreCount(swap), 4);
    EXPECT_EQ(sycamoreCount(swap, /*optimistic=*/true), 3);
}

TEST(BasisCounts, HaarNeedsThreeCnots)
{
    // The 2-CNOT set has Haar measure zero.
    const BasisSpec cx{BasisKind::CNOT};
    const double frac2 = haarFractionWithin(cx, 2, 200, 77);
    EXPECT_LT(frac2, 0.05);
    const double frac3 = haarFractionWithin(cx, 3, 200, 78);
    EXPECT_DOUBLE_EQ(frac3, 1.0);
}

TEST(BasisCounts, HaarSqiswapTwoUseFractionNear79Percent)
{
    // Huang et al.: the W region covers ~79% of Haar-random 2Q unitaries —
    // the "slight information theoretic advantage" of Observation 1.
    const BasisSpec sq{BasisKind::SqISwap};
    const double frac2 = haarFractionWithin(sq, 2, 2000, 79);
    EXPECT_NEAR(frac2, 0.79, 0.04);
}

TEST(BasisCounts, PulseDurations)
{
    EXPECT_DOUBLE_EQ(BasisSpec{BasisKind::CNOT}.pulseDuration(), 1.0);
    EXPECT_DOUBLE_EQ(BasisSpec{BasisKind::SqISwap}.pulseDuration(), 0.5);
    EXPECT_DOUBLE_EQ(BasisSpec{BasisKind::Sycamore}.pulseDuration(), 1.0);
    // A SWAP in the sqiswap basis: 3 gates x 0.5 pulse = 1.5 units, vs
    // 3.0 units in the CNOT basis — the co-design advantage in time.
    const WeylCoords swap{kQ, kQ, kQ};
    EXPECT_DOUBLE_EQ(basisDuration(BasisSpec{BasisKind::SqISwap}, swap), 1.5);
    EXPECT_DOUBLE_EQ(basisDuration(BasisSpec{BasisKind::CNOT}, swap), 3.0);
}

} // namespace
} // namespace snail
