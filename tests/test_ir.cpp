/**
 * @file
 * Unit tests for the circuit IR: instruction validation, appenders, gate
 * statistics, weighted critical paths, ASAP layering, and the dependency
 * frontier the routers consume.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "ir/circuit.hpp"
#include "ir/dag.hpp"

namespace snail
{
namespace
{

TEST(Instruction, ValidatesArity)
{
    EXPECT_THROW(Instruction(gates::cx(), {0}), SnailError);
    EXPECT_THROW(Instruction(gates::h(), {0, 1}), SnailError);
    EXPECT_THROW(Instruction(gates::cx(), {2, 2}), SnailError);
}

TEST(Instruction, ToStringIsReadable)
{
    const Instruction inst(gates::cx(), {3, 7});
    EXPECT_EQ(inst.toString(), "cx q3, q7");
    const Instruction rz(gates::rz(0.5), {1});
    EXPECT_NE(rz.toString().find("rz(0.5)"), std::string::npos);
}

TEST(Instruction, RemapPreservesGate)
{
    const Instruction inst(gates::cx(), {0, 1});
    const Instruction moved = inst.remapped({5, 9});
    EXPECT_EQ(moved.q0(), 5);
    EXPECT_EQ(moved.q1(), 9);
    EXPECT_EQ(moved.gate().kind(), GateKind::CX);
}

TEST(Circuit, RejectsOutOfRangeQubits)
{
    Circuit c(3);
    EXPECT_THROW(c.h(3), SnailError);
    EXPECT_THROW(c.cx(0, 5), SnailError);
    EXPECT_NO_THROW(c.cx(0, 2));
}

TEST(Circuit, CountsKindsAndTwoQubit)
{
    Circuit c(4);
    c.h(0);
    c.cx(0, 1);
    c.cx(1, 2);
    c.swap(2, 3);
    c.rz(0.3, 3);
    EXPECT_EQ(c.size(), 5u);
    EXPECT_EQ(c.countTwoQubit(), 3u);
    EXPECT_EQ(c.countKind(GateKind::CX), 2u);
    EXPECT_EQ(c.countKind(GateKind::Swap), 1u);
    EXPECT_EQ(c.countKind(GateKind::H), 1u);
}

TEST(Circuit, ActiveQubits)
{
    Circuit c(5);
    c.h(1);
    c.cx(1, 3);
    const auto active = c.activeQubits();
    EXPECT_EQ(active, (std::vector<Qubit>{1, 3}));
}

TEST(Circuit, TwoQubitDepthSerialVsParallel)
{
    // Serial chain: depth equals count.
    Circuit serial(3);
    serial.cx(0, 1);
    serial.cx(1, 2);
    serial.cx(0, 1);
    EXPECT_DOUBLE_EQ(serial.twoQubitDepth(), 3.0);

    // Disjoint pairs run in parallel.
    Circuit parallel(4);
    parallel.cx(0, 1);
    parallel.cx(2, 3);
    EXPECT_DOUBLE_EQ(parallel.twoQubitDepth(), 1.0);
}

TEST(Circuit, OneQubitGatesAreFreeInDepth)
{
    Circuit c(2);
    c.h(0);
    c.h(0);
    c.cx(0, 1);
    c.h(1);
    c.cx(0, 1);
    EXPECT_DOUBLE_EQ(c.twoQubitDepth(), 2.0);
}

TEST(Circuit, WeightedCriticalPathSwapWeights)
{
    // Count only SWAPs along dependency chains.
    Circuit c(3);
    c.swap(0, 1);
    c.cx(1, 2);
    c.swap(1, 2);
    c.swap(0, 2);  // depends on both previous swaps
    const double swap_depth = c.weightedCriticalPath([](const Instruction &op) {
        return op.isSwap() ? 1.0 : 0.0;
    });
    EXPECT_DOUBLE_EQ(swap_depth, 3.0);
}

TEST(Circuit, ExtendAppendsAll)
{
    Circuit a(3);
    a.h(0);
    Circuit b(2);
    b.cx(0, 1);
    a.extend(b);
    EXPECT_EQ(a.size(), 2u);
    Circuit wide(4);
    EXPECT_THROW(b.extend(wide), SnailError);
}

TEST(Circuit, DumpListsInstructions)
{
    Circuit c(2, "bell");
    c.h(0);
    c.cx(0, 1);
    std::ostringstream oss;
    c.dump(oss);
    EXPECT_NE(oss.str().find("bell"), std::string::npos);
    EXPECT_NE(oss.str().find("cx q0, q1"), std::string::npos);
}

TEST(Dag, AsapLayersRespectDependencies)
{
    Circuit c(4);
    c.cx(0, 1);  // layer 0
    c.cx(2, 3);  // layer 0
    c.cx(1, 2);  // layer 1 (waits on both)
    c.cx(0, 3);  // layer 1 (waits on first two)
    const auto layers = asapLayers(c);
    EXPECT_EQ(layers, (std::vector<std::size_t>{0, 0, 1, 1}));
}

TEST(Dag, LayeredScheduleGroups)
{
    Circuit c(4);
    c.cx(0, 1);
    c.cx(2, 3);
    c.cx(1, 2);
    const auto grouped = layeredSchedule(c);
    ASSERT_EQ(grouped.size(), 2u);
    EXPECT_EQ(grouped[0].size(), 2u);
    EXPECT_EQ(grouped[1].size(), 1u);
}

/** Snapshot the frontier's ready view into a vector. */
std::vector<std::size_t>
readyVec(const DependencyFrontier &frontier)
{
    const auto view = frontier.ready();
    return std::vector<std::size_t>(view.begin(), view.end());
}

TEST(Dag, FrontierConsumptionAdvances)
{
    Circuit c(3);
    c.cx(0, 1);  // idx 0
    c.cx(1, 2);  // idx 1, depends on 0
    c.h(0);      // idx 2, depends on 0
    DependencyFrontier frontier(c);
    EXPECT_EQ(readyVec(frontier), (std::vector<std::size_t>{0}));
    EXPECT_EQ(frontier.readyCount(), 1u);
    EXPECT_TRUE(frontier.isReady(0));
    EXPECT_FALSE(frontier.isReady(1));
    frontier.consume(0);
    auto ready = readyVec(frontier);
    std::sort(ready.begin(), ready.end());
    EXPECT_EQ(ready, (std::vector<std::size_t>{1, 2}));
    frontier.consume(1);
    frontier.consume(2);
    EXPECT_TRUE(frontier.done());
    EXPECT_EQ(frontier.readyCount(), 0u);
}

/**
 * The ready list must behave exactly like the old vector under
 * interleaved advancing (new instructions becoming ready) and
 * consuming from the middle: removal preserves the relative order of
 * the survivors and newly ready instructions append at the tail —
 * routers' executable-gate choices are order-sensitive, so this is a
 * routed-output-identity invariant, not a convenience.
 */
TEST(Dag, FrontierIndexConsistentUnderInterleavedAdvanceConsume)
{
    // Three independent chains over 6 qubits so the front stays wide.
    Circuit c(6);
    for (int round = 0; round < 3; ++round) {
        c.cx(0, 1);
        c.cx(2, 3);
        c.cx(4, 5);
    }
    DependencyFrontier frontier(c);

    // Reference model: the old vector semantics.
    std::vector<std::size_t> model{0, 1, 2};
    auto model_consume = [&](std::size_t idx) {
        model.erase(std::find(model.begin(), model.end(), idx));
        // Successor on the same chain becomes ready (chains are
        // disjoint, each instruction has at most one successor here).
        if (idx + 3 < c.size()) {
            model.push_back(idx + 3);
        }
    };

    // Consume middle, tail, head, then interleave.
    for (std::size_t idx : {std::size_t{1}, std::size_t{2}, std::size_t{0},
                            std::size_t{4}, std::size_t{3}, std::size_t{5},
                            std::size_t{8}, std::size_t{6},
                            std::size_t{7}}) {
        ASSERT_TRUE(frontier.isReady(idx)) << "instruction " << idx;
        frontier.consume(idx);
        model_consume(idx);
        EXPECT_EQ(readyVec(frontier), model);
        EXPECT_EQ(frontier.readyCount(), model.size());
        for (std::size_t i = 0; i < c.size(); ++i) {
            EXPECT_EQ(frontier.isReady(i),
                      std::find(model.begin(), model.end(), i) !=
                          model.end());
        }
    }
    EXPECT_TRUE(frontier.done());
}

TEST(Dag, FrontierLookaheadSeesSuccessors)
{
    Circuit c(3);
    c.cx(0, 1);
    c.cx(1, 2);
    c.cx(0, 2);
    DependencyFrontier frontier(c);
    const auto ahead = frontier.lookahead(10);
    // Instructions 1 and 2 are successors of the frontier {0}.
    EXPECT_EQ(ahead.size(), 2u);
}

TEST(Dag, ConsumeNotReadyAsserts)
{
    Circuit c(3);
    c.cx(0, 1);
    c.cx(1, 2);
    DependencyFrontier frontier(c);
    EXPECT_THROW(frontier.consume(1), InternalError);
}

} // namespace
} // namespace snail
