/**
 * @file
 * Tests for the composable PassManager API: registry lookup and
 * spec-string round-trips, pass ordering and instrumentation,
 * PropertySet metric accumulation, equality between the legacy
 * transpile() shim and explicitly composed pipelines, first-class
 * trailing-SWAP elision, and transpileBatch determinism across thread
 * counts.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "locale_guard.hpp"

#include "circuits/circuits.hpp"
#include "common/error.hpp"
#include "sim/equivalence.hpp"
#include "topology/registry.hpp"
#include "transpiler/pass_registry.hpp"
#include "transpiler/passes.hpp"
#include "transpiler/pipeline.hpp"

namespace snail
{
namespace
{

/** Ring topology 0-1-...-(n-1)-0. */
CouplingGraph
ringGraph(int n)
{
    CouplingGraph g(n, "ring-" + std::to_string(n));
    for (int i = 0; i < n; ++i) {
        g.addEdge(i, (i + 1) % n);
    }
    return g;
}

/** The three workloads named by the issue: GHZ, QFT, BV. */
std::vector<Circuit>
workloads(int width)
{
    return {ghz(width), qft(width), bernsteinVazirani(width)};
}

void
expectSameMetrics(const TranspileMetrics &a, const TranspileMetrics &b,
                  const std::string &label)
{
    EXPECT_EQ(a.swaps_total, b.swaps_total) << label;
    EXPECT_DOUBLE_EQ(a.swaps_critical, b.swaps_critical) << label;
    EXPECT_EQ(a.ops_2q_pre, b.ops_2q_pre) << label;
    EXPECT_EQ(a.basis_2q_total, b.basis_2q_total) << label;
    EXPECT_DOUBLE_EQ(a.basis_2q_critical, b.basis_2q_critical) << label;
    EXPECT_DOUBLE_EQ(a.duration_total, b.duration_total) << label;
    EXPECT_DOUBLE_EQ(a.duration_critical, b.duration_critical) << label;
}

TEST(PassRegistry, ListsBuiltins)
{
    std::vector<std::string> names;
    for (const auto &row : registeredPasses()) {
        names.push_back(row.name);
    }
    for (const char *expected :
         {"trivial", "dense", "sabre-layout", "vf2", "vf2-strict",
          "basic-route", "stochastic-route", "sabre-route",
          "lookahead-route", "optimize", "elide", "basis", "score"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), expected),
                  names.end())
            << expected << " not registered";
    }
}

TEST(PassRegistry, RejectsUnknownAndMalformed)
{
    EXPECT_THROW(makeRegisteredPass("no-such-pass"), SnailError);
    EXPECT_THROW(makeRegisteredPass(""), SnailError);
    EXPECT_THROW(makeRegisteredPass("stochastic-route=abc"), SnailError);
    EXPECT_THROW(makeRegisteredPass("stochastic-route=0"), SnailError);
    EXPECT_THROW(makeRegisteredPass("dense=3"), SnailError);
    EXPECT_THROW(makeRegisteredPass("basis"), SnailError);
    EXPECT_THROW(makeRegisteredPass("basis=klingon"), SnailError);
    EXPECT_THROW(passManagerFromSpec("dense,,score"), SnailError);
}

TEST(PassRegistry, MalformedArgumentsThrowTypedErrors)
{
    // Bad arguments carry the pass name and the offending text, so a
    // sweep-spec author can find the exact token to fix.
    try {
        makeRegisteredPass("optimize=abc");
        FAIL() << "optimize=abc must throw";
    } catch (const PassArgumentError &e) {
        EXPECT_EQ(e.passName(), "optimize");
        EXPECT_EQ(e.argument(), "abc");
        EXPECT_NE(std::string(e.what()).find("optimize"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("'abc'"), std::string::npos);
    }
    try {
        makeRegisteredPass("stochastic-route=0");
        FAIL() << "stochastic-route=0 must throw";
    } catch (const PassArgumentError &e) {
        EXPECT_EQ(e.passName(), "stochastic-route");
        EXPECT_EQ(e.argument(), "0");
        EXPECT_NE(std::string(e.what()).find("outside"), std::string::npos);
    }
    // from_chars requires full consumption and rejects the non-spec
    // forms std::stod accepts (inf/nan/hex, trailing junk).
    EXPECT_THROW(makeRegisteredPass("noise-route=inf"), PassArgumentError);
    EXPECT_THROW(makeRegisteredPass("noise-route=nan"), PassArgumentError);
    EXPECT_THROW(makeRegisteredPass("noise-route=-inf"), PassArgumentError);
    EXPECT_THROW(makeRegisteredPass("noise-route=-nan"), PassArgumentError);
    EXPECT_THROW(makeRegisteredPass("noise-route=0x10"),
                 PassArgumentError);
    EXPECT_THROW(makeRegisteredPass("noise-route=1.5x"),
                 PassArgumentError);
    EXPECT_THROW(makeRegisteredPass("stochastic-route=1.5"),
                 PassArgumentError);
}

TEST(PassRegistry, StochasticRouteTrialsThreadsSuffix)
{
    // "trials[xthreads]": the thread count only parallelizes the
    // per-layer trials (bit-identical output), and the spec
    // canonicalizes — defaults are omitted.
    EXPECT_EQ(makeRegisteredPass("stochastic-route=10x4")->spec(),
              "stochastic-route=10x4");
    EXPECT_EQ(makeRegisteredPass("stochastic-route=10x1")->spec(),
              "stochastic-route=10");
    EXPECT_EQ(makeRegisteredPass("stochastic-route=20x1")->spec(),
              "stochastic-route");
    EXPECT_EQ(makeRegisteredPass("stochastic-route=20x8")->spec(),
              "stochastic-route=20x8");
    EXPECT_THROW(makeRegisteredPass("stochastic-route=10x"),
                 PassArgumentError);
    EXPECT_THROW(makeRegisteredPass("stochastic-route=x4"),
                 PassArgumentError);
    EXPECT_THROW(makeRegisteredPass("stochastic-route=10x0"),
                 PassArgumentError);
    EXPECT_THROW(makeRegisteredPass("stochastic-route=10xabc"),
                 PassArgumentError);
}

TEST(PassRegistry, ArgumentParsingIgnoresCommaDecimalLocale)
{
    // Regression: std::stod honored LC_NUMERIC, so "noise-route=1.5"
    // parsed as weight 1 under a comma-decimal locale.  The parse must
    // be locale-free whether or not such a locale is installed; when
    // one is, flip to it (exception-safely) to prove the point.
    bool flipped = false;
    {
        const CommaDecimalLocale locale;
        flipped = locale.valid();
        const auto pass = makeRegisteredPass("noise-route=1.5");
        const auto sabre = makeRegisteredPass("sabre-layout=3");
        // The full parse -> spec() round trip stays inside the guard:
        // shortestDouble formats via std::to_chars, so serialization is
        // locale-proof too.
        EXPECT_EQ(pass->spec(), "noise-route=1.5");
        EXPECT_EQ(sabre->spec(), "sabre-layout=3");
    }
    if (!flipped) {
        GTEST_SKIP()
            << "no comma-decimal locale installed; checked C locale only";
    }
}

TEST(PassRegistry, SpecRoundTrip)
{
    for (const char *spec :
         {"dense,stochastic-route,score",
          "vf2,sabre-route,elide,basis=sqiswap",
          "optimize=1,sabre-layout,lookahead-route,basis=iswap,score",
          "trivial,stochastic-route=12,elide,basis=cx,score",
          "sabre-layout=4,basic-route,score"}) {
        const PassManager pm = passManagerFromSpec(spec);
        EXPECT_EQ(pm.spec(), spec);
        // Parse the emitted spec again: still identical.
        EXPECT_EQ(passManagerFromSpec(pm.spec()).spec(), spec);
    }
    // Whitespace is tolerated and normalized away.
    EXPECT_EQ(passManagerFromSpec(" dense , stochastic-route=12 ").spec(),
              "dense,stochastic-route=12");
    // Default arguments collapse onto the bare name.
    EXPECT_EQ(passManagerFromSpec("stochastic-route=20").spec(),
              "stochastic-route");
    EXPECT_EQ(passManagerFromSpec("sabre-layout=2").spec(), "sabre-layout");
    EXPECT_EQ(passManagerFromSpec("optimize=2").spec(), "optimize");
}

TEST(PassRegistry, UserPassRegistrationRuns)
{
    static std::atomic<int> invocations{0};
    class CountingPass : public Pass
    {
      public:
        std::string name() const override { return "counting"; }
        void
        run(PassContext &ctx) const override
        {
            ctx.properties.increment("counting_runs");
            ++invocations;
        }
    };
    registerPass({"counting", "test-only counter", "",
                  [](const std::string &) {
                      return std::make_shared<CountingPass>();
                  }});

    const PassManager pm =
        passManagerFromSpec("counting,dense,basic-route,counting");
    const TranspileResult r =
        pm.run(ghz(4), namedTopology("square-16"), 3);
    EXPECT_EQ(invocations.load(), 2);
    EXPECT_DOUBLE_EQ(r.properties.get("counting_runs"), 2.0);
}

TEST(PassManager, OrderingAndImplicitScore)
{
    const PassManager pm = passManagerFromSpec("dense,basic-route");
    const TranspileResult r =
        pm.run(qft(6), namedTopology("square-16"), 11);
    // pass_stats preserves execution order and records the implicit
    // trailing score pass.
    ASSERT_EQ(r.pass_stats.size(), 3u);
    EXPECT_EQ(r.pass_stats[0].pass, "dense");
    EXPECT_EQ(r.pass_stats[1].pass, "basic-route");
    EXPECT_EQ(r.pass_stats[2].pass, "score");
    EXPECT_TRUE(r.properties.contains("scored"));
    for (const PassStat &stat : r.pass_stats) {
        EXPECT_GE(stat.wall_ms, 0.0);
    }
    // The router's SWAP delta is exactly the scored total.
    EXPECT_EQ(r.pass_stats[1].swap_delta,
              static_cast<long long>(r.metrics.swaps_total) -
                  static_cast<long long>(
                      qft(6).countKind(GateKind::Swap)));
}

TEST(PassManager, RejectsPassesAfterRouting)
{
    const Circuit c = ghz(6);
    const CouplingGraph g = namedTopology("square-16");
    // A second routing pass would re-map the physical circuit.
    EXPECT_THROW(passManagerFromSpec("dense,basic-route,sabre-route")
                     .run(c, g, 3),
                 SnailError);
    // A layout pass after routing would corrupt layout bookkeeping.
    for (const char *late_layout :
         {"dense,basic-route,dense", "dense,basic-route,trivial",
          "dense,basic-route,sabre-layout", "dense,basic-route,vf2"}) {
        EXPECT_THROW(passManagerFromSpec(late_layout).run(c, g, 3),
                     SnailError)
            << late_layout;
    }
}

TEST(PassManager, PropertySetAccumulatesMetrics)
{
    const PassManager pm =
        passManagerFromSpec("dense,stochastic-route=8,basis=sqiswap");
    const TranspileResult r =
        pm.run(qft(8), namedTopology("square-16"), 21);
    const PropertySet &props = r.properties;
    EXPECT_DOUBLE_EQ(props.get("swaps_total"),
                     static_cast<double>(r.metrics.swaps_total));
    EXPECT_DOUBLE_EQ(props.get("basis_2q_total"),
                     static_cast<double>(r.metrics.basis_2q_total));
    EXPECT_DOUBLE_EQ(props.get("duration_total"),
                     r.metrics.duration_total);
    // Routing published its own count, and without elision it matches
    // the scored total minus the circuit's own SWAPs (QFT reversal).
    EXPECT_DOUBLE_EQ(props.get("swaps_added") +
                         static_cast<double>(
                             qft(8).countKind(GateKind::Swap)),
                     props.get("swaps_total"));
}

TEST(PassManager, EmptyPipelineScoresVirtualCircuit)
{
    const PassManager pm;
    const Circuit c = ghz(5);
    const TranspileResult r = pm.run(c, namedTopology("square-16"), 1);
    EXPECT_EQ(r.routed.size(), c.size());
    EXPECT_EQ(r.metrics.swaps_total, 0u);
    EXPECT_TRUE(r.properties.contains("scored"));
    EXPECT_TRUE(r.initial_layout.isComplete());
}

TEST(Shim, MatchesComposedPipelineEverywhere)
{
    // The legacy transpile() must produce metrics identical to both the
    // options-derived PassManager and the equivalent spec string, for
    // every LayoutKind x RouterKind on GHZ/QFT/BV over ring and corral.
    const char *layout_specs[] = {"trivial", "dense", "sabre-layout",
                                  "vf2"};
    const LayoutKind layouts[] = {LayoutKind::Trivial, LayoutKind::Dense,
                                  LayoutKind::Sabre,
                                  LayoutKind::Vf2OrDense};
    const char *router_specs[] = {"basic-route", "stochastic-route=6",
                                  "sabre-route", "lookahead-route"};
    const RouterKind routers[] = {RouterKind::Basic, RouterKind::Stochastic,
                                  RouterKind::Sabre, RouterKind::Lookahead};

    const CouplingGraph ring = ringGraph(16);
    const CouplingGraph corral = namedTopology("corral11-16");
    for (const CouplingGraph *graph : {&ring, &corral}) {
        for (const Circuit &circuit : workloads(8)) {
            for (std::size_t li = 0; li < 4; ++li) {
                for (std::size_t ri = 0; ri < 4; ++ri) {
                    TranspileOptions options;
                    options.layout = layouts[li];
                    options.router = routers[ri];
                    options.stochastic_trials = 6;
                    options.basis = BasisSpec{BasisKind::SqISwap};
                    options.seed = 37;
                    const std::string label =
                        circuit.name() + " on " + graph->name() + " " +
                        layout_specs[li] + "+" + router_specs[ri];

                    const TranspileResult shim =
                        transpile(circuit, *graph, options);
                    const TranspileResult from_options =
                        passManagerFromOptions(options).run(
                            circuit, *graph, options.seed, options.basis);
                    const std::string spec =
                        std::string(layout_specs[li]) + "," +
                        router_specs[ri] + ",basis=sqiswap,score";
                    const TranspileResult from_spec =
                        passManagerFromSpec(spec).run(circuit, *graph,
                                                      options.seed);

                    expectSameMetrics(shim.metrics, from_options.metrics,
                                      label + " (options)");
                    expectSameMetrics(shim.metrics, from_spec.metrics,
                                      label + " (spec)");
                    EXPECT_EQ(shim.final_layout.v2p(),
                              from_spec.final_layout.v2p())
                        << label;
                }
            }
        }
    }
}

TEST(ElidePass, FirstClassAndFoldsFinalLayout)
{
    const Circuit c = qft(8);
    const CouplingGraph g = namedTopology("square-16");

    TranspileOptions options;
    options.seed = 9;
    options.elide_trailing_swaps = true;
    const TranspileResult shim = transpile(c, g, options);

    const TranspileResult piped =
        passManagerFromSpec("dense,stochastic-route,elide")
            .run(c, g, options.seed);
    expectSameMetrics(shim.metrics, piped.metrics, "elide");
    EXPECT_EQ(shim.final_layout.v2p(), piped.final_layout.v2p());
    EXPECT_GT(piped.properties.get("swaps_elided"), 0.0);

    // The folded final layout still certifies the computation.
    Rng rng(13);
    EXPECT_TRUE(routedCircuitEquivalent(c, piped.routed,
                                        piped.initial_layout.v2p(),
                                        piped.final_layout.v2p(), 3, rng));

    // And the fold actually moved the permutation into the layout:
    // without elision the final layout differs.
    const TranspileResult plain =
        passManagerFromSpec("dense,stochastic-route").run(c, g,
                                                          options.seed);
    EXPECT_LT(piped.metrics.swaps_total, plain.metrics.swaps_total);
    EXPECT_NE(piped.final_layout.v2p(), plain.final_layout.v2p());
}

TEST(ElidePass, NoOpOnUnroutedCircuit)
{
    const TranspileResult r = passManagerFromSpec("elide").run(
        ghz(4), namedTopology("square-16"), 3);
    EXPECT_DOUBLE_EQ(r.properties.get("swaps_elided"), 0.0);
    EXPECT_EQ(r.routed.size(), ghz(4).size());
}

TEST(Vf2Pass, StrictThrowsWhereFallbackEmbedsDense)
{
    // QV(12) cannot embed into heavy-hex-20 without SWAPs.
    const Circuit dense_workload = quantumVolume(12, 12, 23);
    const CouplingGraph g = namedTopology("heavy-hex-20");
    EXPECT_THROW(passManagerFromSpec("vf2-strict,basic-route")
                     .run(dense_workload, g, 29),
                 SnailError);
    const TranspileResult r =
        passManagerFromSpec("vf2,basic-route").run(dense_workload, g, 29);
    EXPECT_DOUBLE_EQ(r.properties.get("vf2_embedded"), 0.0);
    EXPECT_GT(r.metrics.swaps_total, 0u);

    // GHZ embeds into the corral with zero SWAPs.
    const TranspileResult embedded =
        passManagerFromSpec("vf2,stochastic-route=6")
            .run(ghz(8), namedTopology("corral11-16"), 31);
    EXPECT_DOUBLE_EQ(embedded.properties.get("vf2_embedded"), 1.0);
    EXPECT_EQ(embedded.metrics.swaps_total, 0u);
}

TEST(Batch, DeterministicAcrossThreadCounts)
{
    const PassManager pm =
        passManagerFromSpec("dense,stochastic-route=6,basis=sqiswap");

    std::vector<TranspileJob> jobs;
    unsigned long long seed = 1;
    for (const char *topo : {"square-16", "corral11-16", "tree-20"}) {
        const CouplingGraph g = namedTopology(topo);
        jobs.emplace_back(qft(8), g, seed++);
        jobs.emplace_back(ghz(8), g, seed++);
        jobs.emplace_back(quantumVolume(8, 8, 5), g, seed++);
        jobs.emplace_back(bernsteinVazirani(8), g, seed++);
    }

    // Serial reference: one pm.run per job, in order.
    std::vector<TranspileResult> serial;
    for (const TranspileJob &job : jobs) {
        serial.push_back(pm.run(job.circuit, job.graph, job.seed,
                                job.basis));
    }

    for (unsigned threads : {1u, 4u, 16u}) {
        const std::vector<TranspileResult> batch =
            transpileBatch(jobs, pm, threads);
        ASSERT_EQ(batch.size(), jobs.size()) << threads << " threads";
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            const std::string label = "job " + std::to_string(i) + " @ " +
                                      std::to_string(threads) +
                                      " threads";
            expectSameMetrics(serial[i].metrics, batch[i].metrics, label);
            EXPECT_EQ(serial[i].routed.size(), batch[i].routed.size())
                << label;
            EXPECT_EQ(serial[i].final_layout.v2p(),
                      batch[i].final_layout.v2p())
                << label;
        }
    }
}

TEST(Batch, OptionsOverloadAndErrorPropagation)
{
    TranspileOptions options;
    options.stochastic_trials = 6;
    std::vector<TranspileJob> jobs;
    jobs.emplace_back(ghz(6), namedTopology("square-16"), 5);
    jobs.emplace_back(qft(6), namedTopology("corral11-16"), 6);
    const std::vector<TranspileResult> results =
        transpileBatch(jobs, options, 2);
    ASSERT_EQ(results.size(), 2u);
    for (const TranspileResult &r : results) {
        EXPECT_TRUE(r.properties.contains("scored"));
    }

    // Per-job basis is honored: identical jobs differing only in basis
    // score differently (sqiswap pulses cost half a duration unit).
    std::vector<TranspileJob> bases;
    bases.emplace_back(qft(6), namedTopology("square-16"), 5,
                       BasisSpec{BasisKind::CNOT});
    bases.emplace_back(qft(6), namedTopology("square-16"), 5,
                       BasisSpec{BasisKind::SqISwap});
    const std::vector<TranspileResult> scored =
        transpileBatch(bases, options, 2);
    EXPECT_EQ(scored[0].metrics.swaps_total, scored[1].metrics.swaps_total);
    EXPECT_NE(scored[0].metrics.duration_total,
              scored[1].metrics.duration_total);
    EXPECT_DOUBLE_EQ(
        scored[1].metrics.duration_total,
        0.5 * static_cast<double>(scored[1].metrics.basis_2q_total));

    // A failing job's exception surfaces to the caller.
    std::vector<TranspileJob> bad;
    bad.emplace_back(ghz(6), namedTopology("square-16"), 5);
    bad.emplace_back(quantumVolume(12, 12, 23),
                     namedTopology("heavy-hex-20"), 7);
    const PassManager strict = passManagerFromSpec("vf2-strict");
    EXPECT_THROW(transpileBatch(bad, strict, 2), SnailError);
}

TEST(StochasticRouter, ConsumesOneCallerDrawRegardlessOfWorkload)
{
    // Counter-based trial RNG: the router takes a single draw from the
    // caller's generator to fix its stream base; all trial randomness
    // is derived by counter.  The caller's stream position therefore no
    // longer depends on circuit size or trial count — the property that
    // makes batch scheduling order irrelevant.
    Rng a(42);
    Rng b(42);
    StochasticSwapRouter(12).route(quantumVolume(10, 10, 9),
                                   namedTopology("square-16"),
                                   Layout::identity(10, 16), a);
    StochasticSwapRouter(4).route(ghz(4), namedTopology("corral11-16"),
                                  Layout::identity(4, 16), b);
    EXPECT_EQ(a.next(), b.next());
}

} // namespace
} // namespace snail
