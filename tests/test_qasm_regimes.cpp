/**
 * @file
 * Tests for the OpenQASM 2.0 exporter and the Sec. 3.1 error-regime
 * figures of merit.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuits/circuits.hpp"
#include "common/error.hpp"
#include "ir/qasm.hpp"
#include "fidelity/regimes.hpp"
#include "transpiler/basis_translation.hpp"

namespace snail
{
namespace
{

TEST(Qasm, ExportsStandardGates)
{
    Circuit c(3, "demo");
    c.h(0);
    c.rz(0.5, 1);
    c.cx(0, 1);
    c.cp(0.25, 1, 2);
    c.swap(0, 2);
    ASSERT_TRUE(isQasmExportable(c));
    const std::string qasm = toQasm(c);
    EXPECT_NE(qasm.find("OPENQASM 2.0;"), std::string::npos);
    EXPECT_NE(qasm.find("qreg q[3];"), std::string::npos);
    EXPECT_NE(qasm.find("h q[0];"), std::string::npos);
    EXPECT_NE(qasm.find("rz(0.5) q[1];"), std::string::npos);
    EXPECT_NE(qasm.find("cx q[0], q[1];"), std::string::npos);
    EXPECT_NE(qasm.find("cp(0.25) q[1], q[2];"), std::string::npos);
    EXPECT_NE(qasm.find("swap q[0], q[2];"), std::string::npos);
}

TEST(Qasm, RejectsExoticKindsUntilLowered)
{
    Circuit c(2);
    c.sqiswap(0, 1);
    EXPECT_FALSE(isQasmExportable(c));
    EXPECT_THROW(toQasm(c), SnailError);
    // Lowering to the CNOT basis makes everything exportable.
    const Circuit lowered = expandToBasis(c, BasisSpec{BasisKind::CNOT});
    EXPECT_TRUE(isQasmExportable(lowered));
    EXPECT_NE(toQasm(lowered).find("u3("), std::string::npos);
}

TEST(Qasm, BenchmarksExportAfterLowering)
{
    for (const Circuit &c : {qft(5), ghz(5), timHamiltonian(5)}) {
        const Circuit lowered =
            expandToBasis(c, BasisSpec{BasisKind::CNOT});
        EXPECT_TRUE(isQasmExportable(lowered)) << c.name();
        const std::string qasm = toQasm(lowered);
        EXPECT_NE(qasm.find("qreg q[5];"), std::string::npos) << c.name();
    }
}

TEST(Qasm, GateAndQubitCountsSurvive)
{
    const Circuit c = ghz(4);
    const std::string qasm = toQasm(c);
    // One h line + three cx lines.
    std::size_t cx_lines = 0;
    std::size_t pos = 0;
    while ((pos = qasm.find("cx q[", pos)) != std::string::npos) {
        ++cx_lines;
        ++pos;
    }
    EXPECT_EQ(cx_lines, 3u);
}

TEST(Regimes, GateLimitedMatchesClosedForm)
{
    TranspileMetrics m;
    m.basis_2q_total = 100;
    EXPECT_NEAR(gateLimitedFidelity(m, 0.001), std::pow(0.999, 100),
                1e-12);
    EXPECT_DOUBLE_EQ(gateLimitedFidelity(m, 0.0), 1.0);
    EXPECT_THROW(gateLimitedFidelity(m, 1.5), SnailError);
}

TEST(Regimes, TimeLimitedMatchesClosedForm)
{
    TranspileMetrics m;
    m.duration_critical = 50.0;
    EXPECT_NEAR(timeLimitedFidelity(m, 1000.0), std::exp(-0.05), 1e-12);
    EXPECT_THROW(timeLimitedFidelity(m, 0.0), SnailError);
}

TEST(Regimes, CombinedIsProduct)
{
    TranspileMetrics m;
    m.basis_2q_total = 40;
    m.duration_critical = 20.0;
    EXPECT_NEAR(combinedFidelity(m, 0.002, 400.0),
                gateLimitedFidelity(m, 0.002) *
                    timeLimitedFidelity(m, 400.0),
                1e-15);
}

TEST(Regimes, HalfPulseBasisWinsTimeRegime)
{
    // Two machines with equal gate counts but sqiswap's half-length
    // pulses: identical in the gate-limited regime, better in the
    // time-limited regime — the paper's core co-design argument.
    TranspileMetrics cx;
    cx.basis_2q_total = 60;
    cx.duration_critical = 30.0;
    TranspileMetrics sq = cx;
    sq.duration_critical = 15.0;
    EXPECT_DOUBLE_EQ(gateLimitedFidelity(cx, 0.003),
                     gateLimitedFidelity(sq, 0.003));
    EXPECT_GT(timeLimitedFidelity(sq, 200.0),
              timeLimitedFidelity(cx, 200.0));
}

} // namespace
} // namespace snail
