/**
 * @file
 * Integration tests for the co-design layer: backends, sweep plumbing,
 * and small-scale versions of the paper's comparative results — richer
 * SNAIL topologies beat Heavy-Hex on SWAPs, and the sqrt(iSWAP) basis
 * beats CNOT on pulse duration.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "codesign/backend.hpp"
#include "codesign/experiment.hpp"
#include "codesign/paper.hpp"
#include "common/error.hpp"

namespace snail
{
namespace
{

SweepOptions
quickOptions(std::vector<int> widths)
{
    SweepOptions opts;
    opts.widths = std::move(widths);
    opts.stochastic_trials = 6;
    opts.seed = 1234;
    return opts;
}

TEST(Backend, MakeBackendNames)
{
    const Backend b = makeBackend("tree-20", BasisKind::SqISwap);
    EXPECT_EQ(b.name, "tree-20-sqiswap");
    EXPECT_EQ(b.topology.numQubits(), 20);
    EXPECT_EQ(b.basis.kind, BasisKind::SqISwap);
    EXPECT_THROW(makeBackend("bogus", BasisKind::CNOT), SnailError);
}

TEST(Backend, PaperBackendSets)
{
    EXPECT_EQ(fig13Backends().size(), 6u);
    EXPECT_EQ(fig14Backends().size(), 5u);
    for (const Backend &b : fig14Backends()) {
        EXPECT_EQ(b.topology.numQubits(), 84) << b.name;
    }
}

TEST(Sweep, SkipsWidthsBeyondTopology)
{
    const auto series = swapSweep({BenchmarkKind::Ghz},
                                  {"square-16", "tree-20"},
                                  quickOptions({8, 20}));
    ASSERT_EQ(series.size(), 2u);
    // square-16 cannot host width 20.
    EXPECT_EQ(series[0].points.size(), 1u);
    EXPECT_EQ(series[1].points.size(), 2u);
}

TEST(Sweep, MetricsPopulated)
{
    const auto series = swapSweep({BenchmarkKind::Qft}, {"square-16"},
                                  quickOptions({8}));
    ASSERT_EQ(series.size(), 1u);
    ASSERT_EQ(series[0].points.size(), 1u);
    const TranspileMetrics &m = series[0].points[0].metrics;
    EXPECT_GT(m.ops_2q_pre, 0u);
    EXPECT_GE(m.swaps_total, 1u); // QFT-8 on a 4x4 grid must route
}

TEST(Sweep, RicherTopologyNeedsFewerSwapsThanHeavyHex)
{
    // Small-scale Fig. 11/12 shape: hypercube and corral beat heavy-hex.
    const auto series = swapSweep(
        {BenchmarkKind::QuantumVolume},
        {"heavy-hex-20", "hypercube-16", "corral11-16"},
        quickOptions({12}));
    ASSERT_EQ(series.size(), 3u);
    const double hh = metricSwapsTotal(series[0].points[0].metrics);
    const double hc = metricSwapsTotal(series[1].points[0].metrics);
    const double co = metricSwapsTotal(series[2].points[0].metrics);
    EXPECT_LT(hc, hh);
    EXPECT_LT(co, hh);
}

TEST(Sweep, SqiswapDurationBeatsCnotOnSameTopology)
{
    // Same topology, different modulator: the sqrt(iSWAP) half-pulse
    // should cut the critical-path duration roughly in half.
    const Backend cx = makeBackend("hypercube-16", BasisKind::CNOT);
    const Backend sq = makeBackend("hypercube-16", BasisKind::SqISwap);
    const auto series = codesignSweep({BenchmarkKind::QuantumVolume},
                                      {cx, sq}, quickOptions({12}));
    ASSERT_EQ(series.size(), 2u);
    const double dur_cx =
        metricDurationCritical(series[0].points[0].metrics);
    const double dur_sq =
        metricDurationCritical(series[1].points[0].metrics);
    EXPECT_LT(dur_sq, dur_cx);
}

TEST(Sweep, SycamorePaysGateCountPenalty)
{
    // Observation 1: the 4-SYC generic decomposition inflates 2Q totals
    // over CNOT's 3 on the same topology.
    const Backend cx = makeBackend("square-16", BasisKind::CNOT);
    const Backend syc = makeBackend("square-16", BasisKind::Sycamore);
    const auto series = codesignSweep({BenchmarkKind::QuantumVolume},
                                      {cx, syc}, quickOptions({10}));
    const double cx_total = metricBasis2qTotal(series[0].points[0].metrics);
    const double syc_total = metricBasis2qTotal(series[1].points[0].metrics);
    EXPECT_GT(syc_total, cx_total);
}

TEST(Sweep, TablePrintingIncludesAllMachines)
{
    const auto series = swapSweep({BenchmarkKind::Ghz},
                                  {"square-16", "hypercube-16"},
                                  quickOptions({6, 10}));
    std::ostringstream oss;
    printSeriesTables(oss, series, metricSwapsTotal, "Total SWAPs");
    const std::string out = oss.str();
    EXPECT_NE(out.find("square-16"), std::string::npos);
    EXPECT_NE(out.find("hypercube-16"), std::string::npos);
    EXPECT_NE(out.find("GHZ"), std::string::npos);
    EXPECT_NE(out.find("Total SWAPs"), std::string::npos);
}

TEST(Headline, HypercubeBeatsHeavyHexAtModerateScale)
{
    // Scaled-down version of the abstract's QV study (widths kept small
    // so the test stays fast); all four advantage ratios must exceed 1.
    const Backend heavy_hex = makeBackend("heavy-hex-84", BasisKind::CNOT);
    const Backend hypercube =
        makeBackend("hypercube-84", BasisKind::SqISwap);
    SweepOptions opts = quickOptions({});
    const HeadlineRatios r =
        headlineRatios(heavy_hex, hypercube, {16, 24}, opts);
    EXPECT_GT(r.swaps_total, 1.0);
    EXPECT_GT(r.swaps_critical, 1.0);
    EXPECT_GT(r.basis_2q_total, 1.0);
    EXPECT_GT(r.duration_critical, 1.0);
    // Duration advantage should outpace the gate-count advantage (the
    // half-pulse effect).
    EXPECT_GT(r.duration_critical, r.basis_2q_total);
}

} // namespace
} // namespace snail
