/**
 * @file
 * Tests for the peephole optimization passes.
 *
 * Every pass must preserve the circuit unitary up to global phase; the
 * randomized suites check this by simulation on random circuits, and
 * the directed suites check that specific rewrites fire (or don't).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ir/circuit.hpp"
#include "sim/equivalence.hpp"
#include "transpiler/optimize.hpp"

namespace snail
{
namespace
{

// ---------------------------------------------------------------------
// removeIdentities
// ---------------------------------------------------------------------

TEST(RemoveIdentities, DropsExplicitIdentity)
{
    Circuit c(1);
    c.i(0);
    c.x(0);
    c.i(0);
    auto stats = removeIdentities(c);
    EXPECT_EQ(stats.removed_identities, 2u);
    EXPECT_EQ(c.size(), 1u);
}

TEST(RemoveIdentities, DropsZeroAngleRotations)
{
    Circuit c(2);
    c.rz(0.0, 0);
    c.rx(0.0, 1);
    c.cp(0.0, 0, 1);
    c.h(0);
    EXPECT_EQ(removeIdentities(c).removed_identities, 3u);
    EXPECT_EQ(c.size(), 1u);
}

TEST(RemoveIdentities, DropsTwoPiWraps)
{
    Circuit c(2);
    c.rz(2.0 * M_PI, 0); // = -I, identity up to phase
    c.rzz(2.0 * M_PI, 0, 1);
    c.cp(2.0 * M_PI, 0, 1);
    EXPECT_EQ(removeIdentities(c).removed_identities, 3u);
    EXPECT_TRUE(c.empty());
}

TEST(RemoveIdentities, KeepsRealGates)
{
    Circuit c(2);
    c.h(0);
    c.rz(0.1, 0);
    c.cx(0, 1);
    EXPECT_EQ(removeIdentities(c).removed_identities, 0u);
    EXPECT_EQ(c.size(), 3u);
}

// ---------------------------------------------------------------------
// fuseSingleQubitGates
// ---------------------------------------------------------------------

TEST(Fuse1Q, MergesRunIntoU3)
{
    Circuit c(1);
    c.h(0);
    c.t(0);
    c.rz(0.3, 0);
    c.rx(0.7, 0);
    Circuit original = c;
    auto stats = fuseSingleQubitGates(c);
    EXPECT_EQ(stats.fused_1q, 3u);
    ASSERT_EQ(c.size(), 1u);
    EXPECT_EQ(c.instructions()[0].gate().kind(), GateKind::U3);
    EXPECT_TRUE(circuitsEquivalent(original, c));
}

TEST(Fuse1Q, LeavesSingletonsAlone)
{
    Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    c.h(1);
    EXPECT_EQ(fuseSingleQubitGates(c).fused_1q, 0u);
    EXPECT_EQ(c.instructions()[0].gate().kind(), GateKind::H);
    EXPECT_EQ(c.instructions()[2].gate().kind(), GateKind::H);
}

TEST(Fuse1Q, InverseRunVanishes)
{
    Circuit c(1);
    c.h(0);
    c.h(0);
    auto stats = fuseSingleQubitGates(c);
    EXPECT_EQ(stats.fused_1q, 2u);
    EXPECT_TRUE(c.empty());
}

TEST(Fuse1Q, TwoQubitGateBreaksRuns)
{
    Circuit c(2);
    c.t(0);
    c.cx(0, 1);
    c.tdg(0);
    Circuit original = c;
    EXPECT_EQ(fuseSingleQubitGates(c).fused_1q, 0u);
    EXPECT_EQ(c.size(), 3u);
    EXPECT_TRUE(circuitsEquivalent(original, c));
}

TEST(Fuse1Q, IndependentQubitsFuseIndependently)
{
    Circuit c(2);
    c.h(0);
    c.t(0);
    c.x(1);
    c.z(1);
    Circuit original = c;
    auto stats = fuseSingleQubitGates(c);
    EXPECT_EQ(stats.fused_1q, 2u);
    EXPECT_EQ(c.size(), 2u);
    EXPECT_TRUE(circuitsEquivalent(original, c));
}

// ---------------------------------------------------------------------
// cancelTwoQubitGates
// ---------------------------------------------------------------------

TEST(Cancel2Q, AdjacentCxPairCancels)
{
    Circuit c(2);
    c.cx(0, 1);
    c.cx(0, 1);
    auto stats = cancelTwoQubitGates(c);
    EXPECT_EQ(stats.cancelled_2q, 2u);
    EXPECT_TRUE(c.empty());
}

TEST(Cancel2Q, ReversedCxDoesNotCancel)
{
    Circuit c(2);
    c.cx(0, 1);
    c.cx(1, 0);
    EXPECT_EQ(cancelTwoQubitGates(c).cancelled_2q, 0u);
    EXPECT_EQ(c.size(), 2u);
}

TEST(Cancel2Q, SymmetricGatesCancelEitherOrientation)
{
    Circuit c(2);
    c.cz(0, 1);
    c.cz(1, 0);
    c.swap(0, 1);
    c.swap(1, 0);
    auto stats = cancelTwoQubitGates(c);
    EXPECT_EQ(stats.cancelled_2q, 4u);
    EXPECT_TRUE(c.empty());
}

TEST(Cancel2Q, InterveningGateBlocksCancellation)
{
    Circuit c(2);
    c.cx(0, 1);
    c.h(1);
    c.cx(0, 1);
    EXPECT_EQ(cancelTwoQubitGates(c).cancelled_2q, 0u);
    EXPECT_EQ(c.size(), 3u);
}

TEST(Cancel2Q, SpectatorGateDoesNotBlock)
{
    // An op on an unrelated qubit must not break the adjacency.
    Circuit c(3);
    c.cx(0, 1);
    c.h(2);
    c.cx(0, 1);
    auto stats = cancelTwoQubitGates(c);
    EXPECT_EQ(stats.cancelled_2q, 2u);
    EXPECT_EQ(c.size(), 1u);
}

TEST(Cancel2Q, CPhaseAnglesMerge)
{
    Circuit c(2);
    c.cp(0.3, 0, 1);
    c.cp(0.4, 1, 0); // symmetric: orientation irrelevant
    auto stats = cancelTwoQubitGates(c);
    EXPECT_EQ(stats.merged_2q, 1u);
    ASSERT_EQ(c.size(), 1u);
    EXPECT_NEAR(c.instructions()[0].gate().params()[0], 0.7, 1e-12);
}

TEST(Cancel2Q, OppositeCPhaseAnglesCancel)
{
    Circuit c(2);
    c.cp(0.9, 0, 1);
    c.cp(-0.9, 0, 1);
    auto stats = cancelTwoQubitGates(c);
    EXPECT_EQ(stats.cancelled_2q, 2u);
    EXPECT_TRUE(c.empty());
}

TEST(Cancel2Q, RzzAnglesMerge)
{
    Circuit c(2);
    c.rzz(1.0, 0, 1);
    c.rzz(0.5, 0, 1);
    auto stats = cancelTwoQubitGates(c);
    EXPECT_EQ(stats.merged_2q, 1u);
    ASSERT_EQ(c.size(), 1u);
    EXPECT_NEAR(c.instructions()[0].gate().params()[0], 1.5, 1e-12);
}

TEST(Cancel2Q, CascadeAfterCancellation)
{
    // Removing the middle pair must re-expose the outer pair.
    Circuit c(2);
    c.cx(0, 1);
    c.cz(0, 1);
    c.cz(0, 1);
    c.cx(0, 1);
    Circuit copy = c;
    auto first = cancelTwoQubitGates(copy);
    EXPECT_EQ(first.cancelled_2q, 4u);
    EXPECT_TRUE(copy.empty());
}

TEST(Cancel2Q, ChainOfThreeLeavesOne)
{
    Circuit c(2);
    c.cx(0, 1);
    c.cx(0, 1);
    c.cx(0, 1);
    cancelTwoQubitGates(c);
    EXPECT_EQ(c.size(), 1u);
    EXPECT_EQ(c.instructions()[0].gate().kind(), GateKind::CX);
}

// ---------------------------------------------------------------------
// optimizeCircuit (fixpoint driver)
// ---------------------------------------------------------------------

TEST(Optimize, LevelZeroIsNoOp)
{
    Circuit c(1);
    c.i(0);
    c.h(0);
    c.h(0);
    auto stats = optimizeCircuit(c, 0);
    EXPECT_EQ(stats.total(), 0u);
    EXPECT_EQ(c.size(), 3u);
}

TEST(Optimize, FixpointCascades)
{
    // cp +0.5 / cp -0.5 merge to identity, re-exposing the cx pair;
    // the h pair then fuses away at level 2.
    Circuit c(2);
    c.h(0);
    c.h(0);
    c.cx(0, 1);
    c.cp(0.5, 0, 1);
    c.cp(-0.5, 0, 1);
    c.cx(0, 1);
    auto stats = optimizeCircuit(c, 2);
    EXPECT_TRUE(c.empty()) << "left " << c.size() << " ops";
    EXPECT_GE(stats.iterations, 1);
}

TEST(Optimize, PreservesNontrivialCircuit)
{
    Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.cx(1, 2);
    c.rz(0.4, 2);
    Circuit original = c;
    optimizeCircuit(c, 2);
    EXPECT_TRUE(circuitsEquivalent(original, c));
    EXPECT_EQ(c.countTwoQubit(), 2u);
}

/** Random circuits: optimization must never change the unitary. */
class OptimizeProperty : public ::testing::TestWithParam<unsigned>
{
};

Circuit
randomCircuit(unsigned seed, int n, int length)
{
    Rng rng(seed);
    Circuit c(n);
    for (int i = 0; i < length; ++i) {
        const int choice = static_cast<int>(rng.index(10));
        const int q = static_cast<int>(rng.index(n));
        int r = static_cast<int>(rng.index(n));
        while (r == q) {
            r = static_cast<int>(rng.index(n));
        }
        switch (choice) {
          case 0:
            c.h(q);
            break;
          case 1:
            c.t(q);
            break;
          case 2:
            c.rz(rng.uniform() * 4 * M_PI - 2 * M_PI, q);
            break;
          case 3:
            c.i(q);
            break;
          case 4:
            c.cx(q, r);
            break;
          case 5:
            c.cx(q, r); // doubled: raises the chance of cancellations
            c.cx(q, r);
            break;
          case 6:
            c.cz(q, r);
            break;
          case 7:
            c.cp(rng.uniform() * 2 * M_PI - M_PI, q, r);
            break;
          case 8:
            c.swap(q, r);
            break;
          default:
            c.rz(0.0, q);
            break;
        }
    }
    return c;
}

TEST_P(OptimizeProperty, UnitaryPreservedLevel1)
{
    Circuit c = randomCircuit(GetParam(), 4, 60);
    Circuit original = c;
    optimizeCircuit(c, 1);
    EXPECT_TRUE(circuitsEquivalent(original, c));
}

TEST_P(OptimizeProperty, UnitaryPreservedLevel2)
{
    Circuit c = randomCircuit(GetParam(), 4, 60);
    Circuit original = c;
    optimizeCircuit(c, 2);
    EXPECT_TRUE(circuitsEquivalent(original, c));
    EXPECT_LE(c.size(), original.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizeProperty,
                         ::testing::Range(1u, 13u));

} // namespace
} // namespace snail
