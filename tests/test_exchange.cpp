/**
 * @file
 * Tests for the parametric-exchange model behind the simulated Fig. 6:
 * Rabi-formula limits, chevron symmetry, and the Eq. 9 identity between
 * resonant pulse lengths and the n-root-iSWAP gate family.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "gates/gate.hpp"
#include "sim/parametric_exchange.hpp"

namespace snail
{
namespace
{

TEST(Exchange, FullSwapOnResonance)
{
    const ExchangeDrive drive{1.0, 0.0};
    // g t = pi/2 completes the excitation transfer.
    EXPECT_NEAR(excitationSwapProbability(drive, M_PI / 2.0), 1.0, 1e-12);
    EXPECT_NEAR(excitationSwapProbability(drive, 0.0), 0.0, 1e-12);
    // And returns at g t = pi.
    EXPECT_NEAR(excitationSwapProbability(drive, M_PI), 0.0, 1e-12);
}

TEST(Exchange, DetuningReducesContrastAndSpeedsFringes)
{
    const ExchangeDrive off{1.0, 2.0};
    // Max transfer off resonance is g^2 / (g^2 + delta^2/4) = 0.5.
    double best = 0.0;
    for (double t = 0.0; t < 10.0; t += 0.001) {
        best = std::max(best, excitationSwapProbability(off, t));
    }
    EXPECT_NEAR(best, 0.5, 1e-3);
    // Oscillation frequency grows with detuning: first maximum earlier.
    const double t_on = M_PI / 2.0;
    const double omega_off = std::sqrt(1.0 + 1.0);
    const double t_off = (M_PI / 2.0) / omega_off;
    EXPECT_LT(t_off, t_on);
    EXPECT_NEAR(excitationSwapProbability(off, t_off), 0.5, 1e-9);
}

TEST(Exchange, ChevronIsSymmetricInDetuning)
{
    std::vector<double> times;
    for (int i = 0; i <= 20; ++i) {
        times.push_back(0.2 * i);
    }
    const auto plus = chevronRow(ExchangeDrive{1.0, 1.3}, times);
    const auto minus = chevronRow(ExchangeDrive{1.0, -1.3}, times);
    ASSERT_EQ(plus.size(), minus.size());
    for (std::size_t i = 0; i < plus.size(); ++i) {
        EXPECT_NEAR(plus[i], minus[i], 1e-12);
    }
}

TEST(Exchange, Eq9GeneratesTheRootFamily)
{
    // The resonant exchange at g t = pi/(2n) IS the n-th root of iSWAP.
    for (double n : {1.0, 2.0, 3.0, 5.0, 7.0}) {
        const double t = pulseLengthForRoot(1.0, n);
        EXPECT_TRUE(allClose(resonantExchangeUnitary(1.0, t),
                             gates::nrootIswap(n).matrix(), 1e-12))
            << "n = " << n;
    }
}

TEST(Exchange, PulseLengthScalesInverselyWithRootAndCoupling)
{
    // Stronger coupling -> faster gate (paper Sec. 4.1).
    EXPECT_NEAR(pulseLengthForRoot(2.0, 1.0),
                0.5 * pulseLengthForRoot(1.0, 1.0), 1e-12);
    // The n-th root is n times shorter — the decoherence win of Fig. 15.
    EXPECT_NEAR(pulseLengthForRoot(1.0, 4.0),
                0.25 * pulseLengthForRoot(1.0, 1.0), 1e-12);
}

TEST(Exchange, ValidatesInputs)
{
    EXPECT_THROW(excitationSwapProbability(ExchangeDrive{0.0, 0.0}, 1.0),
                 SnailError);
    EXPECT_THROW(resonantExchangeUnitary(-1.0, 1.0), SnailError);
    EXPECT_THROW(pulseLengthForRoot(1.0, 0.5), SnailError);
}

} // namespace
} // namespace snail
