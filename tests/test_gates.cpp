/**
 * @file
 * Unit tests for the gate library: matrix identities the paper relies on
 * (Eqs. 1, 2, 4, 6), unitarity of every kind, and family relationships
 * such as (n-root iSWAP)^n == iSWAP.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "gates/gate.hpp"
#include "linalg/matrix.hpp"

namespace snail
{
namespace
{

TEST(Gates, CnotMatrixMatchesEq1)
{
    const Matrix m = gates::cx().matrix();
    const Matrix expected{{1, 0, 0, 0},
                          {0, 1, 0, 0},
                          {0, 0, 0, 1},
                          {0, 0, 1, 0}};
    EXPECT_TRUE(allClose(m, expected, 1e-12));
}

TEST(Gates, NRootIswapMatchesEq2)
{
    for (double n : {1.0, 2.0, 3.0, 4.0, 7.0}) {
        const Matrix m = gates::nrootIswap(n).matrix();
        const double c = std::cos(M_PI / (2.0 * n));
        const double s = std::sin(M_PI / (2.0 * n));
        EXPECT_NEAR(m(1, 1).real(), c, 1e-12);
        EXPECT_NEAR(m(1, 2).imag(), s, 1e-12);
        EXPECT_NEAR(std::abs(m(0, 0) - Complex(1, 0)), 0.0, 1e-12);
        EXPECT_NEAR(std::abs(m(3, 3) - Complex(1, 0)), 0.0, 1e-12);
        EXPECT_TRUE(m.isUnitary(1e-12));
    }
}

TEST(Gates, IswapIsFirstRoot)
{
    EXPECT_TRUE(allClose(gates::iswap().matrix(),
                         gates::nrootIswap(1.0).matrix(), 1e-12));
    // iSWAP exchanges |01> and |10> with a factor i.
    const Matrix m = gates::iswap().matrix();
    EXPECT_NEAR(std::abs(m(1, 2) - Complex(0, 1)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(m(2, 1) - Complex(0, 1)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(m(1, 1)), 0.0, 1e-12);
}

TEST(Gates, NthRootComposesToIswap)
{
    for (double n : {2.0, 3.0, 5.0}) {
        const Matrix root = gates::nrootIswap(n).matrix();
        Matrix acc = Matrix::identity(4);
        for (int k = 0; k < static_cast<int>(n); ++k) {
            acc = acc * root;
        }
        EXPECT_TRUE(allClose(acc, gates::iswap().matrix(), 1e-10))
            << "n = " << n;
    }
}

TEST(Gates, SqIswapEqualsFsimConvention)
{
    // Paper Sec. 2.4.2: sqrt(iSWAP) is FSIM(theta = -pi/4, phi = 0).
    EXPECT_TRUE(allClose(gates::sqiswap().matrix(),
                         gates::fsim(-M_PI / 4.0, 0.0).matrix(), 1e-12));
}

TEST(Gates, FsimMatchesEq6)
{
    const double theta = 0.4;
    const double phi = 1.2;
    const Matrix m = gates::fsim(theta, phi).matrix();
    EXPECT_NEAR(m(1, 1).real(), std::cos(theta), 1e-12);
    EXPECT_NEAR(m(1, 2).imag(), -std::sin(theta), 1e-12);
    EXPECT_NEAR(std::abs(m(3, 3) - std::polar(1.0, -phi)), 0.0, 1e-12);
    EXPECT_TRUE(m.isUnitary(1e-12));
}

TEST(Gates, SycamoreIsFsimHalfPiSixth)
{
    EXPECT_TRUE(allClose(gates::sycamore().matrix(),
                         gates::fsim(M_PI / 2.0, M_PI / 6.0).matrix(),
                         1e-12));
}

TEST(Gates, CrossResonanceMatchesEq4)
{
    const double theta = 0.9;
    const Matrix m = gates::crossRes(theta).matrix();
    const double c = std::cos(theta / 2.0);
    const double s = std::sin(theta / 2.0);
    EXPECT_NEAR(m(0, 0).real(), c, 1e-12);
    EXPECT_NEAR(m(0, 2).imag(), -s, 1e-12);
    EXPECT_NEAR(m(1, 3).imag(), s, 1e-12);
    EXPECT_TRUE(m.isUnitary(1e-12));
}

TEST(Gates, CanonicalReproducesIswapFamily)
{
    // CAN(pi/4n, pi/4n, 0) equals nrootIswap(n) exactly (no phase).
    for (double n : {1.0, 2.0, 3.0}) {
        const double v = M_PI / (4.0 * n);
        EXPECT_TRUE(allClose(gates::canonical(v, v, 0.0).matrix(),
                             gates::nrootIswap(n).matrix(), 1e-12))
            << "n = " << n;
    }
}

TEST(Gates, CanonicalIsUnitaryForRandomAngles)
{
    for (double a : {-0.7, 0.3}) {
        for (double b : {0.1, 1.9}) {
            for (double c : {-1.2, 0.5}) {
                EXPECT_TRUE(
                    gates::canonical(a, b, c).matrix().isUnitary(1e-12));
            }
        }
    }
}

TEST(Gates, AllParameterlessKindsAreUnitary)
{
    const Gate all[] = {gates::i(),   gates::x(),        gates::y(),
                        gates::z(),   gates::h(),        gates::s(),
                        gates::sdg(), gates::t(),        gates::tdg(),
                        gates::sx(),  gates::cx(),       gates::cz(),
                        gates::swapGate(), gates::iswap(),
                        gates::sqiswap(),  gates::sycamore(),
                        gates::bgate()};
    for (const Gate &g : all) {
        EXPECT_TRUE(g.matrix().isUnitary(1e-12)) << g.name();
    }
}

TEST(Gates, ParameterizedKindsAreUnitary)
{
    EXPECT_TRUE(gates::rx(0.3).matrix().isUnitary(1e-12));
    EXPECT_TRUE(gates::ry(-1.1).matrix().isUnitary(1e-12));
    EXPECT_TRUE(gates::rz(2.2).matrix().isUnitary(1e-12));
    EXPECT_TRUE(gates::phase(0.8).matrix().isUnitary(1e-12));
    EXPECT_TRUE(gates::u3(1.0, 2.0, 3.0).matrix().isUnitary(1e-12));
    EXPECT_TRUE(gates::cphase(0.6).matrix().isUnitary(1e-12));
    EXPECT_TRUE(gates::rzz(0.6).matrix().isUnitary(1e-12));
    EXPECT_TRUE(gates::crossRes(1.3).matrix().isUnitary(1e-12));
    EXPECT_TRUE(gates::nrootIswap(6.0).matrix().isUnitary(1e-12));
}

TEST(Gates, SqiswapSquaredIsIswap)
{
    const Matrix sq = gates::sqiswap().matrix();
    EXPECT_TRUE(allClose(sq * sq, gates::iswap().matrix(), 1e-12));
}

TEST(Gates, SwapDecomposesIntoThreeCnots)
{
    const Matrix cx01 = gates::cx().matrix();
    // CX with control on the low qubit = (H x H) CX (H x H).
    const Matrix h = gates::h().matrix();
    const Matrix hh = kron(h, h);
    const Matrix cx10 = hh * cx01 * hh;
    EXPECT_TRUE(
        allClose(cx01 * cx10 * cx01, gates::swapGate().matrix(), 1e-10));
}

TEST(Gates, CzFromCnotWithHadamards)
{
    const Matrix h = gates::h().matrix();
    const Matrix ih = kron(Matrix::identity(2), h);
    EXPECT_TRUE(allClose(ih * gates::cx().matrix() * ih,
                         gates::cz().matrix(), 1e-12));
}

TEST(Gates, ArityAndNames)
{
    EXPECT_EQ(gates::h().numQubits(), 1);
    EXPECT_EQ(gates::cx().numQubits(), 2);
    EXPECT_EQ(gates::cx().name(), "cx");
    EXPECT_EQ(gates::sqiswap().name(), "sqiswap");
    EXPECT_EQ(gates::nrootIswap(4.0).name(), "nroot_iswap");
}

TEST(Gates, CacheKeysDistinguishParameters)
{
    EXPECT_NE(gates::rz(0.1).cacheKey(), gates::rz(0.2).cacheKey());
    EXPECT_EQ(gates::rz(0.1).cacheKey(), gates::rz(0.1).cacheKey());
    EXPECT_NE(gates::rz(0.1).cacheKey(), gates::rx(0.1).cacheKey());
    EXPECT_FALSE(gates::unitary4(Matrix::identity(4)).cacheable());
}

TEST(Gates, ParameterCountValidation)
{
    EXPECT_THROW((void)Gate(GateKind::RZ), SnailError);
    EXPECT_THROW((void)Gate(GateKind::RZ, std::vector<double>{0.1, 0.2}),
                 SnailError);
    EXPECT_THROW((void)Gate(GateKind::Unitary4), SnailError);
    EXPECT_THROW((void)Gate(GateKind::Unitary4, Matrix::identity(2)),
                 SnailError);
}

} // namespace
} // namespace snail
