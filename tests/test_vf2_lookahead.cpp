/**
 * @file
 * Tests for the VF2 perfect-layout pass and the lookahead router.
 *
 * VF2 claims: when it returns a layout, every 2Q gate of the circuit is
 * directly executable (zero SWAPs); when the interaction graph cannot
 * embed, it returns nullopt.  The lookahead router must produce
 * verified-equivalent routed circuits on every topology.
 */

#include <optional>

#include <gtest/gtest.h>

#include "circuits/circuits.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "sim/equivalence.hpp"
#include "topology/builders.hpp"
#include "topology/registry.hpp"
#include "transpiler/pipeline.hpp"
#include "transpiler/vf2_layout.hpp"

namespace snail
{
namespace
{

/** Every 2Q gate lands on an edge under the layout. */
bool
layoutIsPerfect(const Circuit &circuit, const CouplingGraph &graph,
                const Layout &layout)
{
    for (const auto &op : circuit.instructions()) {
        if (op.numQubits() == 2 &&
            !graph.hasEdge(layout.physical(op.q0()),
                           layout.physical(op.q1()))) {
            return false;
        }
    }
    return true;
}

TEST(Vf2Layout, LineIntoLine)
{
    // A GHZ chain embeds into any connected device.
    Circuit c = ghz(5);
    CouplingGraph line(5, "line");
    for (int i = 0; i + 1 < 5; ++i) {
        line.addEdge(i, i + 1);
    }
    auto layout = vf2Layout(c, line);
    ASSERT_TRUE(layout.has_value());
    EXPECT_TRUE(layoutIsPerfect(c, line, *layout));
}

TEST(Vf2Layout, StarIntoLineImpossible)
{
    // A degree-4 star cannot embed into a path (max degree 2).
    Circuit c(5);
    for (int i = 1; i < 5; ++i) {
        c.cx(0, i);
    }
    CouplingGraph line(5, "line");
    for (int i = 0; i + 1 < 5; ++i) {
        line.addEdge(i, i + 1);
    }
    EXPECT_FALSE(vf2Layout(c, line).has_value());
}

TEST(Vf2Layout, TriangleIntoBipartiteImpossible)
{
    // A 3-cycle cannot embed into any cycle-free or bipartite graph;
    // use a 2x2 grid (4-cycle, bipartite).
    Circuit c(3);
    c.cx(0, 1);
    c.cx(1, 2);
    c.cx(2, 0);
    CouplingGraph grid(4, "grid2x2");
    grid.addEdge(0, 1);
    grid.addEdge(1, 3);
    grid.addEdge(3, 2);
    grid.addEdge(2, 0);
    EXPECT_FALSE(vf2Layout(c, grid).has_value());
}

TEST(Vf2Layout, IsolatedQubitsGetHomes)
{
    Circuit c(4);
    c.cx(0, 1); // qubits 2, 3 never interact
    CouplingGraph line(4, "line");
    for (int i = 0; i + 1 < 4; ++i) {
        line.addEdge(i, i + 1);
    }
    auto layout = vf2Layout(c, line);
    ASSERT_TRUE(layout.has_value());
    EXPECT_TRUE(layout->isComplete());
    EXPECT_TRUE(layoutIsPerfect(c, line, *layout));
}

TEST(Vf2Layout, WiderCircuitThanDeviceThrows)
{
    Circuit c(5);
    c.cx(0, 1);
    CouplingGraph small(3, "small");
    small.addEdge(0, 1);
    EXPECT_THROW(vf2Layout(c, small), SnailError);
}

TEST(Vf2Layout, BudgetExhaustionReturnsNullopt)
{
    // A hard instance with a tiny budget must give up, not hang.
    Circuit c = quantumVolume(14, 14, 3);
    const CouplingGraph device = namedTopology("heavy-hex-20");
    auto layout = vf2Layout(c, device, 5);
    EXPECT_FALSE(layout.has_value());
}

TEST(Vf2Layout, Corral11HostsCliqueCircuits)
{
    // The paper's Corral 1,1 observation: its 4-qubit all-to-all module
    // structure hosts 4Q dense circuits with zero SWAPs.
    const CouplingGraph corral = namedTopology("corral11-16");
    Circuit c = quantumVolume(4, 4, 7);
    auto layout = vf2Layout(c, corral);
    ASSERT_TRUE(layout.has_value());
    EXPECT_TRUE(layoutIsPerfect(c, corral, *layout));
}

TEST(Vf2Layout, GhzEmbedsInEveryNamedTopology)
{
    for (const auto &name : topologyNames()) {
        const CouplingGraph device = namedTopology(name);
        const int width = std::min(8, device.numQubits());
        Circuit c = ghz(width);
        auto layout = vf2Layout(c, device);
        ASSERT_TRUE(layout.has_value()) << name;
        EXPECT_TRUE(layoutIsPerfect(c, device, *layout)) << name;
    }
}

TEST(Vf2Layout, PipelineVf2ProducesZeroSwaps)
{
    const CouplingGraph corral = namedTopology("corral11-16");
    Circuit c = quantumVolume(4, 4, 21);
    TranspileOptions options;
    options.layout = LayoutKind::Vf2OrDense;
    const TranspileResult r = transpile(c, corral, options);
    EXPECT_EQ(r.metrics.swaps_total, 0u);
}

// ---------------------------------------------------------------------
// Lookahead router
// ---------------------------------------------------------------------

class LookaheadRouting : public ::testing::TestWithParam<const char *>
{
};

TEST_P(LookaheadRouting, RoutedCircuitIsEquivalent)
{
    const CouplingGraph device = namedTopology(GetParam());
    const int width = std::min(7, device.numQubits());
    Circuit c = quantumVolume(width, width, 5);

    Layout initial = denseLayout(c, device);
    LookaheadRouter router;
    Rng rng(99);
    RoutingResult result = router.route(c, device, initial, rng);

    // All 2Q gates in the routed circuit respect the coupling map.
    for (const auto &op : result.circuit.instructions()) {
        if (op.numQubits() == 2) {
            EXPECT_TRUE(device.hasEdge(op.q0(), op.q1()));
        }
    }
    EXPECT_TRUE(routedCircuitEquivalent(
        c, result.circuit, result.initial_layout.v2p(),
        result.final_layout.v2p(), 3, rng));
}

INSTANTIATE_TEST_SUITE_P(Topologies, LookaheadRouting,
                         ::testing::Values("square-16", "tree-20",
                                           "corral12-16", "hypercube-16",
                                           "heavy-hex-20"));

TEST(LookaheadRouting, NoSwapsWhenAllAdjacent)
{
    CouplingGraph line(3, "line");
    line.addEdge(0, 1);
    line.addEdge(1, 2);
    Circuit c(3);
    c.cx(0, 1);
    c.cx(1, 2);
    LookaheadRouter router;
    Rng rng(1);
    RoutingResult result =
        router.route(c, line, Layout::identity(3, 3), rng);
    EXPECT_EQ(result.swaps_added, 0u);
}

TEST(LookaheadRouting, PipelineIntegration)
{
    const CouplingGraph device = namedTopology("tree-20");
    Circuit c = qft(8);
    TranspileOptions options;
    options.router = RouterKind::Lookahead;
    const TranspileResult r = transpile(c, device, options);
    EXPECT_GT(r.metrics.basis_2q_total, 0u);
}

TEST(LookaheadRouting, CompetitiveWithBasicRouter)
{
    // Lookahead should never be drastically worse than the greedy
    // baseline on a structured workload.
    const CouplingGraph device = namedTopology("square-16");
    Circuit c = qft(10);
    Layout initial = denseLayout(c, device);
    Rng rng_a(5);
    Rng rng_b(5);
    const auto basic = BasicRouter().route(c, device, initial, rng_a);
    const auto ahead = LookaheadRouter().route(c, device, initial, rng_b);
    EXPECT_LE(ahead.swaps_added, 2 * basic.swaps_added + 4);
}

} // namespace
} // namespace snail
