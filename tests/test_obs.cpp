/**
 * @file
 * Tests for the observability layer: metrics-registry semantics
 * (sharded counters stay exact under concurrent writers, histogram
 * bucketing, callback gauges, Prometheus text exposition), tracer
 * balance (nested spans, the null sink, mid-span install), the serve
 * stats/metrics ops under concurrent client load, and the headline
 * contract — sweep and search reports are byte-identical with
 * tracing on or off, at any thread count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "circuits/circuits.hpp"
#include "explore/engine.hpp"
#include "explore/report.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "search/driver.hpp"
#include "serve/service.hpp"

namespace snail
{
namespace
{

namespace fs = std::filesystem;

// ------------------------------------------------------------ metrics

TEST(ObsCounter, ExactUnderConcurrentWriters)
{
    // More threads than shards, uneven per-thread totals: the sharded
    // cells must still sum to exactly what was added.
    MetricsRegistry registry;
    Counter &counter = registry.counter("writers");

    constexpr int kThreads = 24;
    std::vector<std::thread> threads;
    unsigned long long expected = 0;
    for (int t = 0; t < kThreads; ++t) {
        const unsigned long long adds = 100 + 13ull * t;
        expected += adds;
        threads.emplace_back([&counter, adds]() {
            for (unsigned long long i = 0; i < adds; ++i) {
                counter.add();
            }
        });
    }
    for (std::thread &thread : threads) {
        thread.join();
    }
    EXPECT_EQ(counter.value(), expected);
}

TEST(ObsRegistry, FindOrCreateReturnsStableReferences)
{
    MetricsRegistry registry;
    Counter &a = registry.counter("same");
    Counter &b = registry.counter("same");
    EXPECT_EQ(&a, &b);
    // Creating unrelated instruments must not move existing ones.
    for (int i = 0; i < 64; ++i) {
        registry.counter("other-" + std::to_string(i));
    }
    EXPECT_EQ(&registry.counter("same"), &a);
}

TEST(ObsHistogram, BucketsAreLog2Cumulative)
{
    MetricsRegistry registry;
    Histogram &histogram = registry.histogram("lat");

    histogram.observe(0.5);  // bucket 0 (<= 1 us)
    histogram.observe(1.0);  // bucket 0 (inclusive bound)
    histogram.observe(3.0);  // bucket 2 (<= 4 us)
    histogram.observe(1000); // bucket 10 (<= 1024 us)
    histogram.observe(-7.0); // clamped to 0 -> bucket 0

    EXPECT_EQ(histogram.count(), 5u);
    EXPECT_EQ(histogram.cumulativeCount(0), 3u);
    EXPECT_EQ(histogram.cumulativeCount(1), 3u);
    EXPECT_EQ(histogram.cumulativeCount(2), 4u);
    EXPECT_EQ(histogram.cumulativeCount(9), 4u);
    EXPECT_EQ(histogram.cumulativeCount(10), 5u);
    EXPECT_EQ(histogram.cumulativeCount(Histogram::kBuckets - 1), 5u);
    EXPECT_NEAR(histogram.sumUs(), 1004.5, 0.01);
    EXPECT_DOUBLE_EQ(Histogram::bucketBound(0), 1.0);
    EXPECT_DOUBLE_EQ(Histogram::bucketBound(10), 1024.0);
}

TEST(ObsRegistry, SnapshotIsSelfConsistent)
{
    MetricsRegistry registry;
    registry.counter("c").add(41);
    registry.counter("c").add();
    registry.gauge("g").set(2.5);
    registry.registerGauge("cb", []() { return 7.0; });
    Histogram &histogram = registry.histogram("h");
    histogram.observe(2.0);
    histogram.observe(900.0);

    const MetricsSnapshot snap = registry.snapshot();

    ASSERT_EQ(snap.counters.size(), 1u);
    EXPECT_EQ(snap.counters[0].name, "c");
    EXPECT_EQ(snap.counters[0].value, 42u);

    // Stored and callback gauges share one sorted list.
    ASSERT_EQ(snap.gauges.size(), 2u);
    EXPECT_EQ(snap.gauges[0].name, "cb");
    EXPECT_DOUBLE_EQ(snap.gauges[0].value, 7.0);
    EXPECT_EQ(snap.gauges[1].name, "g");
    EXPECT_DOUBLE_EQ(snap.gauges[1].value, 2.5);

    ASSERT_EQ(snap.histograms.size(), 1u);
    const MetricsSnapshot::HistogramValue &h = snap.histograms[0];
    EXPECT_EQ(h.count, 2u);
    ASSERT_EQ(h.cumulative.size(), Histogram::kBuckets);
    // Cumulative counts never decrease and end at the total count.
    for (std::size_t i = 1; i < h.cumulative.size(); ++i) {
        EXPECT_GE(h.cumulative[i], h.cumulative[i - 1]);
    }
    EXPECT_EQ(h.cumulative.back(), h.count);

    registry.unregisterGauge("cb");
    const MetricsSnapshot after = registry.snapshot();
    ASSERT_EQ(after.gauges.size(), 1u);
    EXPECT_EQ(after.gauges[0].name, "g");
}

TEST(ObsRegistry, PrometheusTextExposition)
{
    MetricsRegistry registry;
    registry.counter("snailqc_test_total").add(3);
    registry.gauge("snailqc_test_depth").set(1.5);
    registry.histogram("snailqc_test_us").observe(3.0);

    const std::string text = registry.snapshot().toPrometheusText();

    EXPECT_NE(text.find("# TYPE snailqc_test_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("snailqc_test_total 3"), std::string::npos);
    EXPECT_NE(text.find("# TYPE snailqc_test_depth gauge"),
              std::string::npos);
    EXPECT_NE(text.find("snailqc_test_depth 1.5"), std::string::npos);
    EXPECT_NE(text.find("# TYPE snailqc_test_us histogram"),
              std::string::npos);
    EXPECT_NE(text.find("snailqc_test_us_bucket{le=\"4\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("snailqc_test_us_bucket{le=\"+Inf\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("snailqc_test_us_count 1"), std::string::npos);
    EXPECT_NE(text.find("snailqc_test_us_sum "), std::string::npos);
}

// -------------------------------------------------------------- trace

/** Count occurrences of `needle` in `haystack`. */
std::size_t
countOf(const std::string &haystack, const std::string &needle)
{
    std::size_t count = 0;
    for (std::size_t pos = haystack.find(needle);
         pos != std::string::npos;
         pos = haystack.find(needle, pos + needle.size())) {
        ++count;
    }
    return count;
}

TEST(ObsTracer, NullSinkRecordsNothing)
{
    ASSERT_EQ(activeTracer(), nullptr);
    {
        ScopedSpan span("ignored", "test");
        ScopedSpan nested("also-ignored", "test");
    }
    // Still no tracer, nothing crashed; installing one afterwards
    // starts from an empty stream.
    Tracer tracer;
    EXPECT_EQ(tracer.eventCount(), 0u);
}

TEST(ObsTracer, NestedSpansBalanceInJson)
{
    Tracer tracer;
    setActiveTracer(&tracer);
    {
        ScopedSpan outer("outer", "test");
        {
            ScopedSpan inner("inner", "test");
        }
        ScopedSpan sibling(std::string("sibling"), "test");
    }
    setActiveTracer(nullptr);

    EXPECT_EQ(tracer.eventCount(), 6u);
    EXPECT_EQ(tracer.droppedCount(), 0u);

    std::ostringstream os;
    tracer.writeJson(os);
    const std::string json = os.str();

    EXPECT_EQ(countOf(json, "\"ph\":\"B\""), 3u);
    EXPECT_EQ(countOf(json, "\"ph\":\"E\""), 3u);
    EXPECT_EQ(countOf(json, "\"name\":\"outer\""), 2u);
    EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"thread_name\""), std::string::npos);
    // Valid JSON end to end (parse throws on malformed output).
    EXPECT_NO_THROW(JsonValue::parse(json));
}

TEST(ObsTracer, SpanCapturesTracerAtConstruction)
{
    // A tracer installed *inside* an open span must not receive the
    // span's end (and vice versa): ScopedSpan binds its sink once, so
    // install/uninstall at any moment leaves every stream balanced.
    Tracer tracer;
    {
        ScopedSpan orphan("pre-install", "test");
        setActiveTracer(&tracer);
        {
            ScopedSpan traced("traced", "test");
        }
        setActiveTracer(nullptr);
    }
    EXPECT_EQ(tracer.eventCount(), 2u);

    std::ostringstream os;
    tracer.writeJson(os);
    EXPECT_EQ(countOf(os.str(), "pre-install"), 0u);
    EXPECT_EQ(countOf(os.str(), "\"ph\":\"B\""), 1u);
    EXPECT_EQ(countOf(os.str(), "\"ph\":\"E\""), 1u);
}

TEST(ObsTracer, ThreadsGetDistinctBalancedStreams)
{
    Tracer tracer;
    setActiveTracer(&tracer);
    constexpr int kThreads = 4;
    constexpr int kSpansPerThread = 50;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([]() {
            for (int i = 0; i < kSpansPerThread; ++i) {
                ScopedSpan span("work", "test");
            }
        });
    }
    for (std::thread &thread : threads) {
        thread.join();
    }
    setActiveTracer(nullptr);

    EXPECT_EQ(tracer.eventCount(), 2u * kThreads * kSpansPerThread);

    std::ostringstream os;
    tracer.writeJson(os);
    const std::string json = os.str();
    EXPECT_EQ(countOf(json, "\"ph\":\"B\""),
              std::size_t(kThreads * kSpansPerThread));
    EXPECT_EQ(countOf(json, "\"ph\":\"E\""),
              std::size_t(kThreads * kSpansPerThread));
    // One thread_name metadata record per participating thread.
    EXPECT_EQ(countOf(json, "\"name\":\"thread_name\""),
              std::size_t(kThreads));
}

// ------------------------------------------- serve stats/metrics ops

JsonValue
opRequest(const char *op)
{
    JsonValue::Object body;
    body["op"] = JsonValue(op);
    return JsonValue(std::move(body));
}

JsonValue
smallJob(int width)
{
    JsonValue::Object circuit;
    circuit["bench"] = JsonValue("ghz");
    circuit["width"] = JsonValue(width);
    JsonValue::Object target;
    target["name"] = JsonValue("corral11-16-sqiswap");
    JsonValue::Object body;
    body["op"] = JsonValue("transpile");
    body["circuit"] = JsonValue(std::move(circuit));
    body["target"] = JsonValue(std::move(target));
    body["pipeline"] = JsonValue("dense,sabre-route,basis=sqiswap");
    return JsonValue(std::move(body));
}

TEST(ObsServe, StatsMonotonicUnderConcurrentLoad)
{
    const std::string dir = testing::TempDir() + "obs-stats-cache";
    fs::remove_all(dir);
    ServiceOptions options;
    options.cache_dir = dir;
    Service service(options);

    // Writers hammer transpile while a reader polls stats; every
    // snapshot must be self-consistent and counters never go back.
    std::atomic<bool> done{false};
    std::vector<std::thread> writers;
    constexpr int kWriters = 3;
    constexpr int kJobsPerWriter = 6;
    for (int t = 0; t < kWriters; ++t) {
        writers.emplace_back([&service, t]() {
            for (int i = 0; i < kJobsPerWriter; ++i) {
                service.handle(smallJob(3 + (t + i) % 4));
            }
        });
    }

    unsigned long long last_completed = 0;
    std::thread reader([&]() {
        while (!done.load()) {
            const JsonValue stats = service.handle(opRequest("stats"));
            ASSERT_TRUE(stats.find("ok")->asBool());
            const JsonValue &jobs = *stats.find("jobs");
            const auto completed = static_cast<unsigned long long>(
                jobs.find("completed")->asNumber());
            const auto cached = static_cast<unsigned long long>(
                jobs.find("cached")->asNumber());
            EXPECT_GE(completed, last_completed);
            EXPECT_LE(cached, completed);
            EXPECT_GE(stats.find("uptime_s")->asNumber(), 0.0);
            last_completed = completed;
        }
    });

    for (std::thread &writer : writers) {
        writer.join();
    }
    done.store(true);
    reader.join();

    const JsonValue final_stats = service.handle(opRequest("stats"));
    const JsonValue &jobs = *final_stats.find("jobs");
    EXPECT_EQ(jobs.find("completed")->asNumber(),
              double(kWriters * kJobsPerWriter));
    EXPECT_EQ(jobs.find("in_flight")->asNumber(), 0.0);
    EXPECT_GT(jobs.find("jobs_per_s")->asNumber(), 0.0);
    // Distinct widths repeat across writers, so the cache saw hits;
    // hit_rate must be a valid ratio.
    const double hit_rate =
        final_stats.find("cache")->find("hit_rate")->asNumber();
    EXPECT_GE(hit_rate, 0.0);
    EXPECT_LE(hit_rate, 1.0);
}

TEST(ObsServe, MetricsOpExportsRegistrySeries)
{
    const std::string dir = testing::TempDir() + "obs-metrics-cache";
    fs::remove_all(dir);
    ServiceOptions options;
    options.cache_dir = dir;
    Service service(options);
    service.handle(smallJob(4));

    const JsonValue response = service.handle(opRequest("metrics"));
    ASSERT_TRUE(response.find("ok")->asBool());

    const std::string prom = response.find("prometheus")->asString();
    // The serve, cache, and scheduler families must all be present
    // even before traffic touches every series (pre-registration).
    EXPECT_NE(prom.find("snailqc_serve_requests_total"),
              std::string::npos);
    EXPECT_NE(prom.find("snailqc_serve_jobs_completed_total"),
              std::string::npos);
    EXPECT_NE(prom.find("snailqc_cache_hits_total"), std::string::npos);
    EXPECT_NE(prom.find("snailqc_sched_pool_size"), std::string::npos);
    EXPECT_NE(prom.find("snailqc_sched_queue_depth"),
              std::string::npos);
    EXPECT_NE(prom.find("snailqc_pass_runs_total"), std::string::npos);

    const JsonValue &metrics = *response.find("metrics");
    EXPECT_NE(metrics.find("counters"), nullptr);
    EXPECT_NE(metrics.find("gauges"), nullptr);
    EXPECT_NE(metrics.find("histograms"), nullptr);

    // The structured counters agree with the op's own accounting:
    // at least the one transpile above was counted somewhere.
    const JsonValue &requests =
        *metrics.find("counters")->find("snailqc_serve_requests_total");
    EXPECT_GE(requests.asNumber(), 2.0); // transpile + this metrics op
}

// ------------------------------------- report byte-identity contract

SweepSpec
sweepSmokeSpec()
{
    SweepSpec spec;
    spec.name = "obs-smoke";
    spec.seed = 7;
    spec.circuits.push_back(CircuitSpec{"ghz", {8}, ""});
    spec.circuits.push_back(CircuitSpec{"qft", {8}, ""});
    TargetSpec corral;
    corral.target = "corral11-16-sqiswap";
    spec.targets.push_back(std::move(corral));
    spec.pipelines.push_back("dense,stochastic-route=4");
    return spec;
}

/** CSV + JSON reports of one sweep run, concatenated. */
std::string
sweepReport(unsigned threads)
{
    EngineOptions options;
    options.threads = threads;
    const SweepRun run = runSweep(sweepSmokeSpec(), options);
    std::ostringstream os;
    writeSweepCsv(os, run);
    os << "\n---\n";
    writeSweepJson(os, run);
    return os.str();
}

TEST(ObsByteIdentity, SweepReportsIgnoreTracingAndThreadCount)
{
    // The headline contract: instrumentation is observational only.
    // Reports must not change by a byte whether a tracer is installed
    // or not, at any concurrency.
    const std::string reference = sweepReport(1);

    for (unsigned threads : {1u, 4u, 16u}) {
        Tracer tracer;
        setActiveTracer(&tracer);
        const std::string traced = sweepReport(threads);
        setActiveTracer(nullptr);
        EXPECT_EQ(traced, reference)
            << "traced sweep report diverged at " << threads
            << " threads";
        EXPECT_GT(tracer.eventCount(), 0u);

        const std::string untraced = sweepReport(threads);
        EXPECT_EQ(untraced, reference)
            << "untraced sweep report diverged at " << threads
            << " threads";
    }
}

SearchSpec
searchSmokeSpec()
{
    SearchSpec spec;
    spec.name = "obs-search";
    spec.seed = 11;
    CircuitSpec ghz;
    ghz.bench = "ghz";
    ghz.widths = {5};
    spec.workloads = {ghz};
    spec.pipeline = "dense,sabre-route,elide,basis=sqiswap";
    spec.space.families = {"corral", "hypercube"};
    spec.space.bases = {"sqiswap"};
    spec.space.min_qubits = 5;
    spec.space.max_qubits = 20;
    spec.constraints.max_couplers = 12;
    spec.anneal.iterations = 3;
    spec.anneal.proposals = 2;
    spec.anneal.t0 = 4.0;
    spec.anneal.t1 = 0.5;
    return spec;
}

/** Trace + frontier CSV of one search run, concatenated. */
std::string
searchReport(unsigned threads)
{
    SearchOptions options;
    options.threads = threads;
    const SearchRun run = runSearch(searchSmokeSpec(), options);
    std::ostringstream os;
    writeSearchTrace(os, run);
    os << "\n---\n";
    writeFrontierCsv(os, run);
    return os.str();
}

TEST(ObsByteIdentity, SearchReportsIgnoreTracingAndThreadCount)
{
    const std::string reference = searchReport(1);

    for (unsigned threads : {1u, 4u, 16u}) {
        Tracer tracer;
        setActiveTracer(&tracer);
        const std::string traced = searchReport(threads);
        setActiveTracer(nullptr);
        EXPECT_EQ(traced, reference)
            << "traced search report diverged at " << threads
            << " threads";
        EXPECT_GT(tracer.eventCount(), 0u);
    }
}

} // namespace
} // namespace snail
