/**
 * @file
 * Tests for the stochastic Pauli noise substrate.
 *
 * Directed limiting cases have exact answers (noiseless channel,
 * certain errors on known states); statistical cases are checked
 * against analytic expectations within generous Monte-Carlo bounds.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "circuits/circuits.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "sim/noise.hpp"

namespace snail
{
namespace
{

TEST(NoiseModel, FromFidelities)
{
    const PauliNoiseModel model = PauliNoiseModel::fromFidelities(0.999,
                                                                  0.99);
    EXPECT_NEAR(model.p1, 0.001, 1e-12);
    EXPECT_NEAR(model.p2, 0.01, 1e-12);
    EXPECT_FALSE(model.isNoiseless());
    EXPECT_TRUE(PauliNoiseModel{}.isNoiseless());
}

TEST(NoiseTrajectory, NoiselessMatchesIdeal)
{
    Circuit c = ghz(5);
    Rng rng(3);
    const Statevector noisy =
        runNoisyTrajectory(c, PauliNoiseModel{}, rng);
    Statevector ideal(5);
    ideal.run(c);
    EXPECT_NEAR(std::norm(ideal.inner(noisy)), 1.0, 1e-12);
}

TEST(NoiseEstimate, NoiselessFidelityIsOne)
{
    Circuit c = qft(4);
    Rng rng(5);
    const NoiseEstimate est =
        estimateCircuitFidelity(c, PauliNoiseModel{}, 5, rng);
    EXPECT_NEAR(est.mean_fidelity, 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(est.no_error_prob, 1.0);
    EXPECT_NEAR(est.standard_error, 0.0, 1e-12);
}

TEST(NoiseEstimate, CertainErrorOnGroundState)
{
    // A single identity gate on |0> with p1 = 1: the random Pauli is
    // X, Y, or Z with equal probability; Z leaves |0> invariant, so
    // E[F] = 1/3.
    Circuit c(1);
    c.i(0);
    PauliNoiseModel model;
    model.p1 = 1.0;
    Rng rng(7);
    const NoiseEstimate est =
        estimateCircuitFidelity(c, model, 3000, rng);
    EXPECT_NEAR(est.mean_fidelity, 1.0 / 3.0, 0.03);
    EXPECT_NEAR(est.no_error_prob, 0.0, 1e-12);
}

TEST(NoiseEstimate, MeanAtLeastNoErrorProbability)
{
    // Surviving trajectories contribute 1; errored ones contribute
    // >= 0, so E[F] >= P(no error) up to sampling error.
    Circuit c = quantumVolume(4, 4, 3);
    PauliNoiseModel model;
    model.p1 = 0.002;
    model.p2 = 0.02;
    Rng rng(11);
    const NoiseEstimate est = estimateCircuitFidelity(c, model, 400, rng);
    EXPECT_GE(est.mean_fidelity,
              est.no_error_prob - 4 * est.standard_error);
    EXPECT_GT(est.no_error_prob, 0.0);
    EXPECT_LT(est.no_error_prob, 1.0);
}

TEST(NoiseEstimate, NoErrorProbMatchesGateCount)
{
    Circuit c = ghz(6); // 1 H + 5 CX
    PauliNoiseModel model;
    model.p1 = 0.01;
    model.p2 = 0.05;
    Rng rng(13);
    const NoiseEstimate est = estimateCircuitFidelity(c, model, 2, rng);
    EXPECT_NEAR(est.no_error_prob,
                std::pow(0.99, 1) * std::pow(0.95, 5), 1e-12);
}

TEST(NoiseEstimate, FidelityDecaysWithCircuitSize)
{
    PauliNoiseModel model;
    model.p2 = 0.03;
    Rng rng(17);
    const NoiseEstimate small =
        estimateCircuitFidelity(ghz(3), model, 600, rng);
    const NoiseEstimate large =
        estimateCircuitFidelity(ghz(8), model, 600, rng);
    EXPECT_GT(small.mean_fidelity,
              large.mean_fidelity - 4 * (small.standard_error +
                                         large.standard_error));
}

TEST(NoiseEstimate, IdleDephasingHitsSpectators)
{
    // Two qubits entangled, a third in superposition idles the whole
    // time: with p_idle = 1 its phase flips every unit, reducing
    // fidelity even though no gate touches it after the H.
    Circuit c(3);
    c.h(2);
    c.cx(0, 1);
    PauliNoiseModel model;
    model.p_idle = 1.0;
    Rng rng(19);
    const NoiseEstimate est = estimateCircuitFidelity(c, model, 50, rng);
    // Z on |+> flips it to |->, orthogonal: fidelity collapses to 0.
    EXPECT_NEAR(est.mean_fidelity, 0.0, 1e-9);
}

TEST(NoiseEstimate, GhzParityIsFragile)
{
    // GHZ states are maximally sensitive to single Z errors: any
    // injected Z flips the superposition phase and zeroes fidelity;
    // X errors on interior qubits also break the parity.  Mean
    // fidelity under certain 2Q errors must drop far below 1/2.
    Circuit c = ghz(5);
    PauliNoiseModel model;
    model.p2 = 1.0;
    Rng rng(23);
    const NoiseEstimate est = estimateCircuitFidelity(c, model, 500, rng);
    EXPECT_LT(est.mean_fidelity, 0.3);
}

TEST(NoiseEstimate, RejectsZeroTrials)
{
    Circuit c = ghz(3);
    Rng rng(1);
    EXPECT_THROW(estimateCircuitFidelity(c, PauliNoiseModel{}, 0, rng),
                 SnailError);
}

TEST(NoiseEstimate, DeterministicUnderSeed)
{
    Circuit c = qft(4);
    PauliNoiseModel model;
    model.p2 = 0.05;
    Rng rng_a(42);
    Rng rng_b(42);
    const NoiseEstimate a = estimateCircuitFidelity(c, model, 50, rng_a);
    const NoiseEstimate b = estimateCircuitFidelity(c, model, 50, rng_b);
    EXPECT_DOUBLE_EQ(a.mean_fidelity, b.mean_fidelity);
}

/** Analytic cross-check sweep: E[F] tracks (1-p)^G for small p. */
class NoiseSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(NoiseSweep, TracksGateCountSurrogate)
{
    const double p2 = GetParam();
    Circuit c = quantumVolume(5, 5, 9);
    PauliNoiseModel model;
    model.p2 = p2;
    Rng rng(29);
    const NoiseEstimate est = estimateCircuitFidelity(c, model, 300, rng);
    // The surrogate is a lower bound; for Haar-random blocks the
    // surviving-fidelity excess is small, so the MC mean should sit in
    // [no_error, no_error + 0.25] for these parameters.
    EXPECT_GE(est.mean_fidelity,
              est.no_error_prob - 4 * est.standard_error);
    EXPECT_LE(est.mean_fidelity, est.no_error_prob + 0.25);
}

INSTANTIATE_TEST_SUITE_P(ErrorRates, NoiseSweep,
                         ::testing::Values(0.001, 0.005, 0.01, 0.03));

} // namespace
} // namespace snail
