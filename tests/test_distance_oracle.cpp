/**
 * @file
 * Unit tests for the pluggable DistanceOracle layer.
 *
 * The oracle refactor's core promise is *exactness*: whichever backend
 * (flat table, hierarchical portal decomposition, landmark BFS) answers
 * a distance query, the hop count must equal a fresh reference BFS on
 * the same graph — and therefore any router built on distances produces
 * bit-identical output under every backend.  These tests cross-check
 * every registered generator family at small and kilo-qubit scale,
 * exercise the Auto selection policy and its env-var override, and pin
 * the error/COW/cluster-hint plumbing semantics.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <queue>
#include <vector>

#include "circuits/registry.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "target/target.hpp"
#include "topology/builders.hpp"
#include "topology/distance_oracle.hpp"
#include "topology/registry.hpp"
#include "transpiler/layout.hpp"
#include "transpiler/routing.hpp"
#include "weyl/basis_counts.hpp"

namespace snail
{
namespace
{

/** Independent reference BFS, deliberately not sharing oracle code. */
std::vector<int>
referenceBfs(const CouplingGraph &g, int src)
{
    std::vector<int> dist(static_cast<std::size_t>(g.numQubits()), -1);
    std::queue<int> queue;
    dist[static_cast<std::size_t>(src)] = 0;
    queue.push(src);
    while (!queue.empty()) {
        const int u = queue.front();
        queue.pop();
        for (const int v : g.neighbors(u)) {
            if (dist[static_cast<std::size_t>(v)] < 0) {
                dist[static_cast<std::size_t>(v)] =
                    dist[static_cast<std::size_t>(u)] + 1;
                queue.push(v);
            }
        }
    }
    return dist;
}

/**
 * Cross-check a forced oracle policy against reference BFS on a sample
 * of source rows (all rows when the graph is small).
 */
void
expectOracleExact(const CouplingGraph &base, DistanceOraclePolicy policy,
                  int max_sources = 24)
{
    CouplingGraph g = base;
    g.setOraclePolicy(policy);
    g.ensureDistanceOracle();
    const DistanceOracle &oracle = g.distanceOracle();

    const int n = g.numQubits();
    Rng rng(0xD157);
    std::vector<int> sources;
    if (n <= max_sources) {
        for (int q = 0; q < n; ++q) {
            sources.push_back(q);
        }
    } else {
        for (int i = 0; i < max_sources; ++i) {
            sources.push_back(static_cast<int>(rng.intRange(0, n - 1)));
        }
    }
    for (const int src : sources) {
        const std::vector<int> ref = referenceBfs(base, src);
        // Sample targets too on large graphs: full rows on kiloqubit
        // instances would make the landmark cross-check quadratic.
        const int stride = n > 512 ? 17 : 1;
        for (int dst = 0; dst < n; dst += stride) {
            const int expected = ref[static_cast<std::size_t>(dst)];
            const std::uint16_t raw = oracle.distanceRaw(src, dst);
            if (expected < 0) {
                EXPECT_EQ(raw, kDistUnreachable)
                    << base.name() << " " << toString(oracle.kind())
                    << " src=" << src << " dst=" << dst;
            } else {
                EXPECT_EQ(static_cast<int>(raw), expected)
                    << base.name() << " " << toString(oracle.kind())
                    << " src=" << src << " dst=" << dst;
            }
        }
    }
}

/** All three backends against BFS on one graph. */
void
expectAllBackendsExact(const CouplingGraph &g)
{
    expectOracleExact(g, DistanceOraclePolicy::Flat);
    expectOracleExact(g, DistanceOraclePolicy::Hierarchical);
    expectOracleExact(g, DistanceOraclePolicy::Landmark);
}

TEST(DistanceOracle, ExactOnEveryGeneratorFamilySmall)
{
    expectAllBackendsExact(squareLattice(5, 7));
    expectAllBackendsExact(latticeWithAltDiagonals(6, 6));
    expectAllBackendsExact(hexLattice(4, 8));
    expectAllBackendsExact(heavyHexLattice(3, 5));
    expectAllBackendsExact(hypercube(5));
    expectAllBackendsExact(incompleteHypercube(23));
    expectAllBackendsExact(modularTree(2));
    expectAllBackendsExact(modularTree(3));
    expectAllBackendsExact(modularTreeRoundRobin(3));
    expectAllBackendsExact(corral(11, 1, 2));
    expectAllBackendsExact(chipletLattice(2, 3, 8));
}

TEST(DistanceOracle, ExactAtKiloScale)
{
    // Kiloqubit instances: hierarchical (and landmark, where cheap)
    // must agree with reference BFS on sampled rows.
    expectOracleExact(chipletLattice(8, 8, 16),
                      DistanceOraclePolicy::Hierarchical, 8);
    expectOracleExact(chipletLattice(8, 8, 16),
                      DistanceOraclePolicy::Landmark, 4);
    expectOracleExact(squareLattice(32, 32),
                      DistanceOraclePolicy::Hierarchical, 8);
    expectOracleExact(hexLattice(32, 32),
                      DistanceOraclePolicy::Hierarchical, 8);
    expectOracleExact(heavyHexLattice(16, 16),
                      DistanceOraclePolicy::Hierarchical, 8);
    expectOracleExact(modularTree(5), DistanceOraclePolicy::Hierarchical,
                      8);
    expectOracleExact(incompleteHypercube(1500),
                      DistanceOraclePolicy::Landmark, 4);
}

TEST(DistanceOracle, ExactOnAdversarialRandomGraphs)
{
    // Non-modular random graphs have no useful cluster structure; the
    // grown partition must still answer exactly (exactness holds for
    // *any* partition), and so must the landmark fallback.
    Rng rng(0xBAD5EED);
    for (int trial = 0; trial < 4; ++trial) {
        const int n = 40 + trial * 17;
        CouplingGraph g(n, "random-" + std::to_string(trial));
        // Random spanning chain plus random chords.
        for (int q = 1; q < n; ++q) {
            g.addEdge(static_cast<int>(rng.intRange(0, q - 1)), q);
        }
        for (int extra = 0; extra < n; ++extra) {
            const int a = static_cast<int>(rng.intRange(0, n - 1));
            const int b = static_cast<int>(rng.intRange(0, n - 1));
            if (a != b && !g.hasEdge(a, b)) {
                g.addEdge(a, b);
            }
        }
        expectAllBackendsExact(g);
    }
}

TEST(DistanceOracle, AutoPolicySelectsByScaleAndStructure)
{
    // Small graphs keep the flat table regardless of hints.
    CouplingGraph small = namedTopology("tree-84");
    small.ensureDistanceOracle();
    EXPECT_EQ(small.distanceOracle().kind(), DistanceOracleKind::Flat);

    // Kiloqubit modular hardware gets the hierarchical oracle, and the
    // compression gate guarantees at least 4x under the flat table.
    CouplingGraph chiplets = namedTopology("chiplet-4096");
    chiplets.ensureDistanceOracle();
    EXPECT_EQ(chiplets.distanceOracle().kind(),
              DistanceOracleKind::Hierarchical);
    EXPECT_LT(chiplets.distanceOracle().memoryBytes(),
              flatTableBytes(chiplets.numQubits()) / 4);

    // Kiloqubit hypercubes are expander-like: every vertex borders
    // another cluster, the portal estimate blows past the gate, and
    // Auto falls back to the landmark oracle.
    CouplingGraph cube = incompleteHypercube(2048);
    cube.ensureDistanceOracle();
    EXPECT_EQ(cube.distanceOracle().kind(), DistanceOracleKind::Landmark);
    EXPECT_LT(cube.distanceOracle().memoryBytes(),
              flatTableBytes(cube.numQubits()));
}

TEST(DistanceOracle, EnvVarOverridesAutoPolicy)
{
    ::setenv("SNAILQC_DISTANCE_ORACLE", "hier", 1);
    CouplingGraph g = squareLattice(4, 4);
    g.ensureDistanceOracle();
    EXPECT_EQ(g.distanceOracle().kind(), DistanceOracleKind::Hierarchical);

    ::setenv("SNAILQC_DISTANCE_ORACLE", "landmark", 1);
    CouplingGraph h = squareLattice(4, 4);
    h.ensureDistanceOracle();
    EXPECT_EQ(h.distanceOracle().kind(), DistanceOracleKind::Landmark);

    ::setenv("SNAILQC_DISTANCE_ORACLE", "bogus", 1);
    CouplingGraph bad = squareLattice(4, 4);
    EXPECT_THROW(bad.ensureDistanceOracle(), SnailError);

    ::unsetenv("SNAILQC_DISTANCE_ORACLE");
    CouplingGraph back = squareLattice(4, 4);
    back.ensureDistanceOracle();
    EXPECT_EQ(back.distanceOracle().kind(), DistanceOracleKind::Flat);
}

TEST(DistanceOracle, DisconnectedThrowsTypedErrorUnderEveryBackend)
{
    for (const DistanceOraclePolicy policy :
         {DistanceOraclePolicy::Flat, DistanceOraclePolicy::Hierarchical,
          DistanceOraclePolicy::Landmark}) {
        CouplingGraph g(6, "split");
        g.addEdge(0, 1);
        g.addEdge(1, 2);
        g.addEdge(3, 4);
        g.addEdge(4, 5);
        g.setOraclePolicy(policy);
        try {
            g.distance(0, 5);
            FAIL() << "expected DisconnectedError under policy "
                   << static_cast<int>(policy);
        } catch (const DisconnectedError &e) {
            EXPECT_EQ(e.graphName(), "split");
        }
        // shortestPath must throw the same typed error *up front*, not
        // partway through a walk.
        EXPECT_THROW(g.shortestPath(2, 3), DisconnectedError);
        // Reachable pairs still answer.
        EXPECT_EQ(g.distance(0, 2), 2);
        EXPECT_EQ(g.shortestPath(3, 5).size(), 3u);
    }
}

TEST(DistanceOracle, OverflowGuardHoldsForEveryPolicy)
{
    // The uint16 encoding caps every backend, not just the flat table:
    // a graph that cannot be distance-encoded is rejected before any
    // build work regardless of the requested oracle.
    for (const DistanceOraclePolicy policy :
         {DistanceOraclePolicy::Hierarchical,
          DistanceOraclePolicy::Landmark}) {
        CouplingGraph big(70000, "too-big");
        big.addEdge(0, 1);
        big.setOraclePolicy(policy);
        EXPECT_THROW(big.distance(0, 1), DistanceOverflowError);
    }
}

TEST(DistanceOracle, ClusterHintPlumbing)
{
    CouplingGraph g = chipletLattice(2, 2, 8);
    ASSERT_NE(g.clusterHint(), nullptr);
    EXPECT_EQ(g.clusterHint()->size(), static_cast<std::size_t>(32));

    // Copies share the hint vector (COW, no deep copy).
    CouplingGraph copy = g;
    EXPECT_EQ(copy.clusterHint(), g.clusterHint());

    // addEdge keeps the hint (the partition stays valid) but drops the
    // built oracle so distances rebuild against the new adjacency.
    g.ensureDistanceOracle();
    g.addEdge(0, 31);
    EXPECT_NE(g.clusterHint(), nullptr);
    g.ensureDistanceOracle();
    EXPECT_EQ(g.distance(0, 31), 1);

    // trimToSize yields a smaller graph whose stale hint is dropped.
    CouplingGraph trimmed = chipletLattice(2, 2, 8).trimToSize(24);
    EXPECT_EQ(trimmed.clusterHint(), nullptr);

    // Hints must cover every qubit and be non-negative.
    CouplingGraph bad(4, "bad-hint");
    EXPECT_THROW(bad.setClusterHint({0, 1}), SnailError);
    EXPECT_THROW(bad.setClusterHint({0, -1, 1, 1}), SnailError);
}

TEST(DistanceOracle, CopiesShareTheOracleCopyOnWrite)
{
    CouplingGraph g = squareLattice(4, 4);
    g.ensureDistanceOracle();
    EXPECT_FALSE(g.sharesDistanceTable());
    CouplingGraph copy = g;
    EXPECT_TRUE(g.sharesDistanceTable());
    EXPECT_TRUE(copy.sharesDistanceTable());
    // Mutation detaches only the mutated copy.
    copy.addEdge(0, 15);
    EXPECT_FALSE(g.sharesDistanceTable());
    EXPECT_EQ(g.distance(0, 15), 6);
    EXPECT_EQ(copy.distance(0, 15), 1);
}

TEST(DistanceOracle, RoutedOutputBitIdenticalAcrossBackends)
{
    // The acceptance bar for the whole refactor: routers consult
    // distances only through the oracle, so forcing different backends
    // must leave the routed instruction stream bit-identical.
    const CouplingGraph base = namedTopology("tree-84");
    const Circuit circuit = makeBenchmark("qv", 20);

    const auto routeUnder = [&](DistanceOraclePolicy policy,
                                Router &router) {
        CouplingGraph g = base;
        g.setOraclePolicy(policy);
        Rng rng(7);
        const Layout initial = trivialLayout(circuit, g);
        return router.route(circuit, g, initial, rng);
    };

    BasicRouter basic;
    StochasticSwapRouter stochastic(8, 1);
    SabreRouter sabre;
    LookaheadRouter lookahead(2, 4, 12);
    Router *routers[] = {&basic, &stochastic, &sabre, &lookahead};
    for (Router *router : routers) {
        const RoutingResult flat =
            routeUnder(DistanceOraclePolicy::Flat, *router);
        const RoutingResult hier =
            routeUnder(DistanceOraclePolicy::Hierarchical, *router);
        const RoutingResult landmark =
            routeUnder(DistanceOraclePolicy::Landmark, *router);
        EXPECT_EQ(flat.circuit.contentHash(), hier.circuit.contentHash());
        EXPECT_EQ(flat.circuit.contentHash(),
                  landmark.circuit.contentHash());
        EXPECT_EQ(flat.swaps_added, hier.swaps_added);
        EXPECT_EQ(flat.swaps_added, landmark.swaps_added);
    }
}

TEST(DistanceOracle, HintDoesNotPerturbTargetContentHash)
{
    // Cluster hints are advisory accelerator metadata; two targets over
    // the same couplings must hash identically no matter which hint (if
    // any) was declared, or transpile caches would miss across versions.
    CouplingGraph chiplet_hint = chipletLattice(2, 2, 8);
    CouplingGraph trivial_hint = chiplet_hint;
    trivial_hint.setClusterHint(
        std::vector<int>(static_cast<std::size_t>(32), 0));
    const BasisSpec basis = parseBasisSpec("sqiswap");
    const Target a = Target::uniform(chiplet_hint, basis);
    const Target b = Target::uniform(trivial_hint, basis);
    EXPECT_EQ(a.contentHash(), b.contentHash());
}

} // namespace
} // namespace snail
