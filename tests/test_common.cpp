/**
 * @file
 * Unit tests for the common substrate: RNG determinism and distribution
 * sanity, statistics accumulators, table rendering, and error machinery.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/statistics.hpp"
#include "common/table.hpp"

namespace snail
{
namespace
{

TEST(Rng, SameSeedSameStream)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next()) {
            ++same;
        }
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        sum += rng.uniform();
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, IndexCoversRangeUniformly)
{
    Rng rng(3);
    std::vector<int> hits(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        ++hits[rng.index(10)];
    }
    for (int h : hits) {
        EXPECT_NEAR(static_cast<double>(h) / n, 0.1, 0.02);
    }
}

TEST(Rng, IntRangeInclusive)
{
    Rng rng(5);
    std::set<long> seen;
    for (int i = 0; i < 1000; ++i) {
        const long v = rng.intRange(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMomentsMatch)
{
    Rng rng(13);
    RunningStats stats;
    for (int i = 0; i < 200000; ++i) {
        stats.add(rng.normal());
    }
    EXPECT_NEAR(stats.mean(), 0.0, 0.02);
    EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(17);
    std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7};
    rng.shuffle(v);
    std::set<int> s(v.begin(), v.end());
    EXPECT_EQ(s.size(), 8u);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(99);
    Rng b = a.split();
    // The split stream must not just replay the parent.
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next()) {
            ++same;
        }
    }
    EXPECT_EQ(same, 0);
}

TEST(RunningStats, BasicMoments)
{
    RunningStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
        s.add(v);
    }
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsSafe)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Statistics, GeometricMean)
{
    EXPECT_NEAR(geometricMean({1.0, 4.0, 16.0}), 4.0, 1e-12);
    EXPECT_NEAR(geometricMean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_THROW(geometricMean({1.0, -1.0}), SnailError);
}

TEST(Statistics, MedianEvenOdd)
{
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
    EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Table, AlignedOutputContainsCells)
{
    TableWriter t({"Topology", "Dia", "AvgC"});
    t.addRow({"hypercube", "4", "4.00"});
    t.addRow({"heavy-hex", "8", "2.10"});
    std::ostringstream oss;
    t.print(oss);
    const std::string s = oss.str();
    EXPECT_NE(s.find("hypercube"), std::string::npos);
    EXPECT_NE(s.find("2.10"), std::string::npos);
    EXPECT_NE(s.find("Topology"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    TableWriter t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream oss;
    t.printCsv(oss);
    EXPECT_EQ(oss.str(), "a,b\n1,2\n");
}

TEST(Table, RowWidthMismatchThrows)
{
    TableWriter t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), SnailError);
}

TEST(Error, RequireThrowsWithMessage)
{
    try {
        SNAIL_REQUIRE(false, "bad thing " << 42);
        FAIL() << "should have thrown";
    } catch (const SnailError &e) {
        EXPECT_NE(std::string(e.what()).find("bad thing 42"),
                  std::string::npos);
    }
}

TEST(Error, AssertThrowsInternalError)
{
    EXPECT_THROW(SNAIL_ASSERT(1 == 2, "impossible"), InternalError);
}

} // namespace
} // namespace snail
