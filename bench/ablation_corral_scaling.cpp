/**
 * @file
 * Extension ablation (paper future work, Sec. 7): scaling Corrals.
 *
 * The paper demonstrates 16-qubit Corrals and asks whether larger rings
 * can compete with the aspirational hypercube.  This bench grows the
 * ring (posts = 8..42, i.e. 16..84 qubits) for several fence strides
 * and compares structural metrics and routed QV SWAP counts against the
 * incomplete hypercube of the same size.
 *
 * Expected shape: Corral diameter/average distance grow linearly with
 * ring size (the ring backbone dominates) while the hypercube grows
 * logarithmically — so fixed-stride Corrals fall behind at scale unless
 * the stride grows with the ring, supporting the paper's conclusion
 * that Corral scaling needs new link patterns.
 */

#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "circuits/registry.hpp"
#include "common/table.hpp"
#include "topology/builders.hpp"
#include "transpiler/pipeline.hpp"

namespace
{

using namespace snail;

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = snail_bench::quickMode(argc, argv);

    printBanner(std::cout, "Corral scaling -- structural metrics");
    TableWriter table({"qubits", "corral11_dia", "corral11_avgd",
                       "corral12_dia", "corral12_avgd", "corral13_dia",
                       "corral13_avgd", "hcube_dia", "hcube_avgd"});
    const std::vector<int> post_counts =
        quick ? std::vector<int>{8, 16, 28, 42}
              : std::vector<int>{8, 12, 16, 20, 24, 28, 32, 36, 42};
    for (int posts : post_counts) {
        const int qubits = 2 * posts;
        const CouplingGraph c11 = corral(posts, 1, 1);
        const CouplingGraph c12 = corral(posts, 1, 2);
        const CouplingGraph c13 = corral(posts, 1, 3);
        const CouplingGraph hc = incompleteHypercube(qubits);
        table.addRow({std::to_string(qubits),
                      std::to_string(c11.diameter()),
                      TableWriter::num(c11.averageDistance(), 2),
                      std::to_string(c12.diameter()),
                      TableWriter::num(c12.averageDistance(), 2),
                      std::to_string(c13.diameter()),
                      TableWriter::num(c13.averageDistance(), 2),
                      std::to_string(hc.diameter()),
                      TableWriter::num(hc.averageDistance(), 2)});
    }
    table.print(std::cout);

    printBanner(std::cout,
                "Corral scaling -- total SWAPs, QV at 3/4 machine size");
    TableWriter swaps({"qubits", "corral11", "corral12", "corral13",
                       "stride_sqrt", "hypercube"});
    const std::vector<int> sweep_posts =
        quick ? std::vector<int>{8, 16} : std::vector<int>{8, 16, 24, 32};
    for (int posts : sweep_posts) {
        const int qubits = 2 * posts;
        const int width = 3 * qubits / 4;
        const Circuit qv =
            makeBenchmark(BenchmarkKind::QuantumVolume, width, 17);
        TranspileOptions opts;
        opts.seed = 23;
        opts.stochastic_trials = quick ? 4 : 8;

        // Stride that grows with the ring: s ~ posts/4 keeps the second
        // fence spanning a constant fraction of the circumference.
        const int grown = std::max(2, posts / 4);
        std::vector<std::string> row{std::to_string(qubits)};
        for (const CouplingGraph &g :
             {corral(posts, 1, 1), corral(posts, 1, 2),
              corral(posts, 1, 3), corral(posts, 1, grown),
              incompleteHypercube(qubits)}) {
            const TranspileResult r = transpile(qv, g, opts);
            row.push_back(std::to_string(r.metrics.swaps_total));
        }
        swaps.addRow(std::move(row));
    }
    swaps.print(std::cout);

    std::cout << "\nFixed-stride Corrals scale linearly in diameter and "
                 "fall behind the hypercube as the ring grows; letting "
                 "the stride grow with the ring recovers part of the "
                 "gap, matching the paper's call for new scalable Corral "
                 "link patterns.\n";
    return 0;
}
