/**
 * @file
 * Reproduces Fig. 4: total and critical-path SWAP gates required for
 * circuits of growing width on the 84-qubit baseline topologies
 * (Heavy-Hex, Hex-Lattice, Square-Lattice, Lattice+AltDiagonals,
 * Hypercube), across the six benchmarks.
 *
 * The count of induced SWAPs is independent of the basis gate and
 * measures topology efficiency under placement and routing (paper
 * Sec. 3.2).  Expected shape: the lattices need the most SWAPs, the
 * hypercube the fewest, with the gap widening as circuits grow.
 */

#include <iostream>

#include "bench_util.hpp"
#include "codesign/experiment.hpp"

int
main(int argc, char **argv)
{
    using namespace snail;
    const bool quick = snail_bench::quickMode(argc, argv);

    SweepOptions opts;
    opts.widths = quick ? snail_bench::range(16, 64, 24)
                        : snail_bench::range(8, 80, 8);
    opts.stochastic_trials = quick ? 4 : 10;
    opts.verbose = false;

    const std::vector<std::string> topologies = {
        "heavy-hex-84", "hex-84", "square-84", "lattice-altdiag-84",
        "hypercube-84"};
    const auto series = swapSweep(allBenchmarks(), topologies, opts);

    printSeriesTables(std::cout, series, metricSwapsTotal,
                      "Fig. 4 (top): Total SWAP count, 84q baselines");
    printSeriesTables(std::cout, series, metricSwapsCritical,
                      "Fig. 4 (bottom): Critical-path SWAPs, 84q baselines");
    return 0;
}
