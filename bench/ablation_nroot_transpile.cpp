/**
 * @file
 * Extension ablation (paper future work, Sec. 7): transpile whole
 * circuits to deeper fractional-root bases.
 *
 * The analytic rules stop at sqrt(iSWAP); the EmpiricalBasisModel
 * measures the minimal template size per Weyl class with NuOp, enabling
 * n-root-iSWAP transpilation for n > 2.  Expected shape: gate counts
 * grow with n while total and critical-path pulse durations shrink —
 * the circuit-level version of the Fig. 15 effect.
 */

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "circuits/circuits.hpp"
#include "common/table.hpp"
#include "decomp/empirical_counts.hpp"
#include "topology/registry.hpp"
#include "transpiler/pipeline.hpp"

namespace
{

using namespace snail;

/** Score a routed circuit under an empirical basis model. */
struct ModelScore
{
    std::size_t pulses = 0;
    double duration_total = 0.0;
    double duration_critical = 0.0;
};

ModelScore
score(const Circuit &routed, const EmpiricalBasisModel &model)
{
    std::vector<int> counts;
    counts.reserve(routed.size());
    for (const auto &op : routed.instructions()) {
        counts.push_back(
            op.isTwoQubit() ? model.count(op.gate().matrix()) : 0);
    }
    ModelScore s;
    for (int c : counts) {
        s.pulses += static_cast<std::size_t>(c);
    }
    s.duration_total =
        static_cast<double>(s.pulses) * model.pulseDuration();
    std::size_t index = 0;
    const double pulse = model.pulseDuration();
    s.duration_critical = routed.weightedCriticalPath(
        [&counts, &index, pulse](const Instruction &) {
            return static_cast<double>(counts[index++]) * pulse;
        });
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = snail_bench::quickMode(argc, argv);
    const int width = quick ? 8 : 12;

    const CouplingGraph device = namedTopology("corral11-16");
    const Circuit workloads[] = {quantumVolume(width, 0, 5), qft(width)};

    for (const Circuit &circuit : workloads) {
        // Route once (basis-agnostic), then score per basis model.
        TranspileOptions opts;
        opts.seed = 31;
        const TranspileResult routed = transpile(circuit, device, opts);

        printBanner(std::cout,
                    "n-root-iSWAP transpilation of " + circuit.name() +
                        " on corral11-16 (" +
                        std::to_string(routed.metrics.ops_2q_pre) +
                        " routed 2Q ops)");
        TableWriter table({"basis", "pulses", "total duration",
                           "critical duration"});
        for (double n : {1.0, 2.0, 3.0, 4.0}) {
            const EmpiricalBasisModel model = nrootIswapModel(n);
            const ModelScore s = score(routed.routed, model);
            table.addRow({"iswap^(1/" + TableWriter::count(n) + ")",
                          std::to_string(s.pulses),
                          TableWriter::num(s.duration_total, 1),
                          TableWriter::num(s.duration_critical, 1)});
        }
        table.print(std::cout);
    }
    std::cout << "\nDeeper roots trade more pulses for shorter total "
                 "schedules, extending Fig. 15 from single gates to full "
                 "circuits.\n";
    return 0;
}
