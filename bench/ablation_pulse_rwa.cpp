/**
 * @file
 * Extension ablation (ours): validity of the rotating-wave closed
 * forms behind Eq. 9 and Fig. 15.
 *
 * The paper's n-root-iSWAP duration scaling assumes the driven
 * exchange follows the RWA unitary exactly.  This bench integrates the
 * full time-dependent Hamiltonian (counter-rotating term included) and
 * reports the propagator error versus the qubit splitting Delta / g
 * and versus the root index n (shorter pulses average the fast term
 * over fewer cycles).
 *
 * Expected shape: error falls roughly like g / Delta, and for a given
 * Delta grows mildly as n increases (shorter pulses); at the SNAIL's
 * design point (GHz splittings, MHz couplings: Delta/g ~ 1000) the
 * corrections are negligible, supporting the paper's idealization.
 */

#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "pulse/exchange_pulse.hpp"

namespace
{

using namespace snail;

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = snail_bench::quickMode(argc, argv);
    (void)quick;

    printBanner(std::cout,
                "RWA propagator error vs qubit splitting (full iSWAP "
                "pulse, g = 1)");
    TableWriter table({"Delta/g", "rwa_error"});
    for (double ratio : {2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 500.0}) {
        table.addRow({TableWriter::num(ratio, 0),
                      TableWriter::num(
                          rwaError(1.0, ratio, M_PI / 2.0), 6)});
    }
    table.print(std::cout);

    printBanner(std::cout,
                "RWA error vs root index n (Delta/g = 50): the Eq. 9 "
                "pulse-length knob");
    TableWriter roots({"n", "pulse_len", "rwa_error"});
    for (int n : {1, 2, 3, 4, 5, 6, 7}) {
        const double t = M_PI / (2.0 * n);
        roots.addRow({std::to_string(n), TableWriter::num(t, 3),
                      TableWriter::num(rwaError(1.0, 50.0, t), 6)});
    }
    roots.print(std::cout);

    std::cout << "\nCounter-rotating corrections fall like g/Delta; at "
                 "the SNAIL design point (Delta/g >~ 10^3) Eq. 9's "
                 "closed form is accurate to < 1e-3, validating the "
                 "n-root pulse-length scaling the co-design relies "
                 "on.\n";
    return 0;
}
