/**
 * @file
 * google-benchmark microbenchmarks for the co-design search stack:
 * the hardware cost model over the generator zoo, the mutation /
 * build / validate proposal loop, and a tiny end-to-end annealing
 * search with transpiles in the loop.
 *
 * Each row carries deterministic counters next to its timings:
 * `score_checksum` folds every cost-model field (and every proposal
 * label) through the same FNV-1a hasher the transpile cache uses, and
 * `candidates` counts work items, so tools/compare_bench.py can gate
 * CI on "the search still proposes and scores exactly what the
 * committed baseline did" while ignoring machine-dependent times.
 * Checksums are masked to 32 bits because counters travel as doubles.
 *
 *   perf_search --json > perf.json
 *   python3 tools/compare_bench.py bench/BENCH_perf_search.json perf.json
 */

#include <benchmark/benchmark.h>

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "search/cost_model.hpp"
#include "search/driver.hpp"
#include "search/frontier.hpp"
#include "search/mutate.hpp"
#include "search/search_spec.hpp"
#include "topology/generators.hpp"

namespace
{

using namespace snail;

/** Counter-safe 32-bit fold of an FNV-1a state. */
double
foldChecksum(unsigned long long hash)
{
    return static_cast<double>(hash & 0xFFFFFFFFULL);
}

/** A spread of paper-relevant design points across every family. */
const std::vector<std::pair<std::string, std::vector<int>>> &
costCases()
{
    static const std::vector<std::pair<std::string, std::vector<int>>>
        cases = {
            {"corral", {8, 1, 2}},  {"corral", {16, 1, 3}},
            {"corral", {42, 3, 5}}, {"tree", {2}},
            {"tree", {3}},          {"tree-rr", {3}},
            {"hypercube", {4}},     {"hypercube", {6}},
            {"incomplete-hypercube", {21}},
            {"square", {6, 6}},     {"hex", {4, 4}},
            {"heavy-hex", {3, 4}},  {"lattice-altdiag", {4, 4}},
        };
    return cases;
}

/**
 * Score every case's prebuilt graph through hardwareCost().  The
 * checksum folds all cost fields bit for bit, so any change to the
 * model's arithmetic shows up as counter drift in CI.
 */
void
BM_CostModel(benchmark::State &state)
{
    std::vector<std::pair<std::vector<int>, CouplingGraph>> built;
    std::vector<std::string> families;
    for (const auto &[family, args] : costCases()) {
        built.emplace_back(args, buildGeneratedTopology(family, args));
        families.push_back(family);
    }

    unsigned long long checksum = 0;
    for (auto _ : state) {
        ContentHasher hasher;
        for (std::size_t i = 0; i < built.size(); ++i) {
            const HardwareCost cost = hardwareCost(
                families[i], built[i].first, built[i].second);
            hasher.i64(cost.qubits)
                .u64(cost.couplers)
                .u64(cost.snails)
                .i64(cost.max_degree)
                .f64(cost.mean_degree)
                .f64(cost.wiring);
        }
        checksum = hasher.value();
        benchmark::DoNotOptimize(checksum);
    }
    state.counters["candidates"] = static_cast<double>(built.size());
    state.counters["score_checksum"] = foldChecksum(checksum);
}
BENCHMARK(BM_CostModel);

/**
 * The proposal loop in isolation: mutate, build, validate, label —
 * everything the driver does per proposal except the transpiles.  One
 * iteration draws `range(0)` proposals from counter-based streams;
 * the checksum folds the chosen labels, pinning the whole mutation
 * kernel (move selection, clamping, re-fit, rejection) byte for byte.
 */
void
BM_MutationWalk(benchmark::State &state)
{
    SearchSpace space;
    space.families = {"corral", "tree", "tree-rr", "hypercube",
                      "incomplete-hypercube", "square"};
    space.bases = {"sqiswap", "cx"};
    space.min_qubits = 16;
    space.max_qubits = 96;
    const BuiltCandidate start = initialCandidate(space, 16);
    const int proposals = static_cast<int>(state.range(0));

    unsigned long long checksum = 0;
    for (auto _ : state) {
        ContentHasher hasher;
        BuiltCandidate current = start;
        for (int id = 0; id < proposals; ++id) {
            Rng rng =
                Rng::stream(2026, static_cast<unsigned long long>(id));
            current = proposeCandidate(current, space, 16, rng);
            const std::string label = current.target.name();
            for (const char c : label) {
                hasher.byte(static_cast<unsigned char>(c));
            }
        }
        checksum = hasher.value();
        benchmark::DoNotOptimize(checksum);
    }
    state.counters["candidates"] = static_cast<double>(proposals);
    state.counters["score_checksum"] = foldChecksum(checksum);
}
BENCHMARK(BM_MutationWalk)->Arg(64)->Arg(256);

/**
 * End-to-end tiny search (examples/search/smoke-search.json shape):
 * annealing with real transpiles in the loop, fresh cache each
 * iteration.  `jobs` counts candidate evaluations — deterministic at
 * any thread count — and the checksum folds the frontier CSV bytes,
 * the exact artifact the determinism tests and the CI smoke compare.
 */
void
BM_SearchTiny(benchmark::State &state)
{
    SearchSpec spec;
    spec.name = "perf-tiny";
    spec.seed = 11;
    spec.workloads.push_back(CircuitSpec{"ghz", {6}, ""});
    spec.workloads.push_back(CircuitSpec{"qft", {5}, ""});
    spec.pipeline = "dense,sabre-route,elide,basis=sqiswap";
    spec.space.families = {"corral", "hypercube"};
    spec.space.bases = {"sqiswap", "cx"};
    spec.space.min_qubits = 6;
    spec.space.max_qubits = 24;
    spec.constraints.max_couplers = 12;
    spec.anneal.iterations = 4;
    spec.anneal.proposals = 2;
    spec.anneal.t0 = 4.0;
    spec.anneal.t1 = 0.5;

    std::size_t evaluations = 0;
    unsigned long long checksum = 0;
    for (auto _ : state) {
        const SearchRun run = runSearch(spec, SearchOptions{});
        evaluations = run.evaluations;
        std::ostringstream csv;
        writeFrontierCsv(csv, run);
        ContentHasher hasher;
        for (const char c : csv.str()) {
            hasher.byte(static_cast<unsigned char>(c));
        }
        checksum = hasher.value();
        benchmark::DoNotOptimize(checksum);
    }
    state.counters["jobs"] = static_cast<double>(evaluations);
    state.counters["score_checksum"] = foldChecksum(checksum);
}
BENCHMARK(BM_SearchTiny)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    // Map our stable `--json` shorthand onto google-benchmark's flag
    // before the library parses the command line.
    static char json_flag[] = "--benchmark_format=json";
    std::vector<char *> args(argv, argv + argc);
    for (char *&arg : args) {
        if (std::string(arg) == "--json") {
            arg = json_flag;
        }
    }
    int args_count = static_cast<int>(args.size());
    benchmark::Initialize(&args_count, args.data());
    if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
