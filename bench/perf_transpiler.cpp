/**
 * @file
 * google-benchmark microbenchmarks for the transpiler: layout, the three
 * routers, and the end-to-end pipeline on paper-sized inputs.
 */

#include <benchmark/benchmark.h>

#include "circuits/circuits.hpp"
#include "topology/registry.hpp"
#include "transpiler/pipeline.hpp"

namespace
{

using namespace snail;

void
BM_DenseLayout84(benchmark::State &state)
{
    const CouplingGraph g = namedTopology("hypercube-84");
    const Circuit c = quantumVolume(static_cast<int>(state.range(0)), 0, 3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(denseLayout(c, g));
    }
}
BENCHMARK(BM_DenseLayout84)->Arg(16)->Arg(48)->Arg(80);

void
routerBench(benchmark::State &state, RouterKind kind)
{
    const CouplingGraph g = namedTopology("heavy-hex-84");
    const int width = static_cast<int>(state.range(0));
    const Circuit c = quantumVolume(width, 0, 3);
    const Layout init = denseLayout(c, g);
    std::unique_ptr<Router> router;
    switch (kind) {
      case RouterKind::Basic:
        router = std::make_unique<BasicRouter>();
        break;
      case RouterKind::Stochastic:
        router = std::make_unique<StochasticSwapRouter>(10);
        break;
      case RouterKind::Sabre:
        router = std::make_unique<SabreRouter>();
        break;
    }
    std::size_t swaps = 0;
    for (auto _ : state) {
        Rng rng(42);
        const RoutingResult r = router->route(c, g, init, rng);
        swaps = r.swaps_added;
        benchmark::DoNotOptimize(r.circuit.size());
    }
    state.counters["swaps"] = static_cast<double>(swaps);
}

void
BM_BasicRouter(benchmark::State &state)
{
    routerBench(state, RouterKind::Basic);
}
BENCHMARK(BM_BasicRouter)->Arg(24)->Arg(48);

void
BM_StochasticRouter(benchmark::State &state)
{
    routerBench(state, RouterKind::Stochastic);
}
BENCHMARK(BM_StochasticRouter)->Arg(24)->Arg(48);

void
BM_SabreRouter(benchmark::State &state)
{
    routerBench(state, RouterKind::Sabre);
}
BENCHMARK(BM_SabreRouter)->Arg(24)->Arg(48);

void
BM_PipelineQv(benchmark::State &state)
{
    const CouplingGraph g = namedTopology("hypercube-84");
    const Circuit c = quantumVolume(static_cast<int>(state.range(0)), 0, 3);
    TranspileOptions opts;
    opts.basis = BasisSpec{BasisKind::SqISwap};
    opts.stochastic_trials = 10;
    for (auto _ : state) {
        benchmark::DoNotOptimize(transpile(c, g, opts).metrics.basis_2q_total);
    }
}
BENCHMARK(BM_PipelineQv)->Arg(24)->Arg(48)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
