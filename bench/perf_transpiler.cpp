/**
 * @file
 * google-benchmark microbenchmarks for the transpiler: layout, the
 * routers, the end-to-end PassManager pipeline on paper-sized inputs,
 * and transpileBatch thread scaling.
 *
 * BM_TranspileBatch runs a fixed 16-job workload (QV and QFT across
 * four 84-qubit topologies) at 1/4/16 worker threads; with 4+ cores
 * the 4-thread row's wall time drops >= 2x below the 1-thread row,
 * while the per-job results stay bit-identical (asserted here and in
 * tests/test_pass_manager.cpp).
 *
 * BM_RouterStepDelta / BM_RouterStepResum / BM_RouterStepCopy isolate
 * the SWAP-candidate scoring kernel of one routing step across its
 * three generations: incremental per-gate terms (DeltaScorer, the
 * shipped hot path), the full re-sum through a SwappedView (PR 4),
 * and the original per-candidate Layout copy.  All three compute the
 * same score_checksum, proving the optimizations changed nothing but
 * time.
 *
 * `--json` emits the results as machine-readable JSON on stdout
 * (shorthand for google-benchmark's --benchmark_format=json), so CI
 * and future PRs can track a perf trajectory.  The committed baseline
 * lives at bench/BENCH_perf_transpiler.json; compare a fresh run's
 * deterministic counters against it with:
 *
 *   perf_transpiler --json > perf.json
 *   python3 tools/compare_bench.py bench/BENCH_perf_transpiler.json perf.json
 */

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <utility>
#include <vector>

#include "circuits/circuits.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "topology/distance_oracle.hpp"
#include "topology/registry.hpp"
#include "transpiler/delta_scorer.hpp"
#include "transpiler/pass_registry.hpp"
#include "transpiler/passes.hpp"
#include "transpiler/pipeline.hpp"
#include "transpiler/routing.hpp"

namespace
{

using namespace snail;

/**
 * Deterministic fixture for the router-step microbenchmark: a shuffled
 * complete layout on the 84-qubit heavy-hex device plus a "front" of
 * blocked virtual pairs, mirroring one SWAP-selection step of the
 * SABRE/stochastic routers.
 */
struct RouterStepFixture
{
    CouplingGraph graph;
    Layout layout;
    std::vector<std::pair<int, int>> front;
    Circuit circuit;
    std::vector<const Instruction *> front_ops;

    explicit RouterStepFixture(int front_size)
        : graph(namedTopology("heavy-hex-84")), layout(84, 84), circuit(84)
    {
        Rng rng(2026);
        std::vector<int> perm(84);
        for (int i = 0; i < 84; ++i) {
            perm[static_cast<std::size_t>(i)] = i;
        }
        for (int i = 83; i > 0; --i) {
            const int j = static_cast<int>(
                rng.next() % static_cast<std::uint64_t>(i + 1));
            std::swap(perm[static_cast<std::size_t>(i)],
                      perm[static_cast<std::size_t>(j)]);
        }
        for (int v = 0; v < 84; ++v) {
            layout.assign(v, perm[static_cast<std::size_t>(v)]);
        }
        for (int k = 0; k < front_size; ++k) {
            const int a = static_cast<int>(rng.next() % 84);
            int b = static_cast<int>(rng.next() % 84);
            if (a == b) {
                b = (b + 1) % 84;
            }
            front.emplace_back(a, b);
        }
        // The same front as real instructions, for the DeltaScorer row.
        for (const auto &[a, b] : front) {
            circuit.cx(a, b);
        }
        for (std::size_t k = 0; k < circuit.size(); ++k) {
            front_ops.push_back(&circuit.instructions()[k]);
        }
    }
};

/**
 * One router step as shipped: a DeltaScorer rebuild, then every device
 * edge as a candidate SWAP answered by incremental per-gate deltas —
 * O(gates touching the swapped pair) per candidate instead of
 * O(front).  `score_checksum` is deterministic, equals the other two
 * rows' checksum exactly (the sums are exact integers), and lets CI
 * detect scoring drift.
 */
void
BM_RouterStepDelta(benchmark::State &state)
{
    const RouterStepFixture fx(static_cast<int>(state.range(0)));
    const auto edges = fx.graph.edges();
    DeltaScorer scorer(fx.graph);
    long total = 0;
    for (auto _ : state) {
        total = 0;
        scorer.rebuild(fx.layout, fx.front_ops, {});
        for (const auto &[a, b] : edges) {
            total += scorer.frontSum() + scorer.swapDelta(a, b).front;
        }
        benchmark::DoNotOptimize(total);
    }
    state.counters["candidates"] = static_cast<double>(edges.size());
    state.counters["score_checksum"] = static_cast<double>(total);
}
BENCHMARK(BM_RouterStepDelta)->Arg(4)->Arg(16);

/**
 * The same step with the PR-4 pattern this PR replaces — a full
 * distance re-sum through the zero-copy SwappedView per candidate —
 * kept as a reference row so the trajectory records what incremental
 * terms bought.
 */
void
BM_RouterStepResum(benchmark::State &state)
{
    const RouterStepFixture fx(static_cast<int>(state.range(0)));
    const auto edges = fx.graph.edges();
    long total = 0;
    for (auto _ : state) {
        total = 0;
        for (const auto &[a, b] : edges) {
            const SwappedView view(fx.layout, a, b);
            for (const auto &[va, vb] : fx.front) {
                total += fx.graph.distance(view.physical(va),
                                           view.physical(vb));
            }
        }
        benchmark::DoNotOptimize(total);
    }
    state.counters["candidates"] = static_cast<double>(edges.size());
    state.counters["score_checksum"] = static_cast<double>(total);
}
BENCHMARK(BM_RouterStepResum)->Arg(4)->Arg(16);

/**
 * The same step with the pre-delta pattern — one Layout copy per
 * candidate — kept as a reference row so the trajectory records what
 * the SwappedView refactor bought.
 */
void
BM_RouterStepCopy(benchmark::State &state)
{
    const RouterStepFixture fx(static_cast<int>(state.range(0)));
    const auto edges = fx.graph.edges();
    long total = 0;
    for (auto _ : state) {
        total = 0;
        for (const auto &[a, b] : edges) {
            Layout probe = fx.layout;
            probe.swapPhysical(a, b);
            for (const auto &[va, vb] : fx.front) {
                total += fx.graph.distance(probe.physical(va),
                                           probe.physical(vb));
            }
        }
        benchmark::DoNotOptimize(total);
    }
    state.counters["candidates"] = static_cast<double>(edges.size());
    state.counters["score_checksum"] = static_cast<double>(total);
}
BENCHMARK(BM_RouterStepCopy)->Arg(4)->Arg(16);

void
BM_DenseLayout84(benchmark::State &state)
{
    const CouplingGraph g = namedTopology("hypercube-84");
    const Circuit c = quantumVolume(static_cast<int>(state.range(0)), 0, 3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(denseLayout(c, g));
    }
}
BENCHMARK(BM_DenseLayout84)->Arg(16)->Arg(48)->Arg(80);

void
routerBench(benchmark::State &state, const char *route_pass)
{
    const CouplingGraph g = namedTopology("heavy-hex-84");
    const int width = static_cast<int>(state.range(0));
    const Circuit c = quantumVolume(width, 0, 3);

    // Lay out once outside the timed loop; each iteration copies the
    // laid-out context and times the routing pass alone.
    PassContext base(c, g, BasisSpec{}, 42);
    DenseLayoutPass().run(base);
    const std::shared_ptr<const Pass> route =
        makeRegisteredPass(route_pass);

    double swaps = 0.0;
    for (auto _ : state) {
        PassContext ctx = base;
        route->run(ctx);
        swaps = ctx.properties.get("swaps_added");
        benchmark::DoNotOptimize(ctx.circuit.size());
    }
    state.counters["swaps"] = swaps;
}

void
BM_BasicRouter(benchmark::State &state)
{
    routerBench(state, "basic-route");
}
BENCHMARK(BM_BasicRouter)->Arg(24)->Arg(48);

void
BM_StochasticRouter(benchmark::State &state)
{
    routerBench(state, "stochastic-route=10");
}
BENCHMARK(BM_StochasticRouter)->Arg(24)->Arg(48);

void
BM_SabreRouter(benchmark::State &state)
{
    routerBench(state, "sabre-route");
}
BENCHMARK(BM_SabreRouter)->Arg(24)->Arg(48);

void
BM_PipelineQv(benchmark::State &state)
{
    const CouplingGraph g = namedTopology("hypercube-84");
    const Circuit c = quantumVolume(static_cast<int>(state.range(0)), 0, 3);
    const PassManager pm =
        passManagerFromSpec("dense,stochastic-route=10,basis=sqiswap");
    for (auto _ : state) {
        benchmark::DoNotOptimize(pm.run(c, g).metrics.basis_2q_total);
    }
}
BENCHMARK(BM_PipelineQv)->Arg(24)->Arg(48)->Unit(benchmark::kMillisecond);

/** The fixed batch workload: 16 jobs over 84-qubit devices. */
std::vector<TranspileJob>
batchJobs()
{
    std::vector<TranspileJob> jobs;
    const char *devices[] = {"hypercube-84", "heavy-hex-84", "square-84",
                             "tree-84"};
    unsigned long long seed = 1;
    for (const char *device : devices) {
        const CouplingGraph g = namedTopology(device);
        jobs.emplace_back(quantumVolume(24, 0, 3), g, seed++);
        jobs.emplace_back(quantumVolume(32, 0, 5), g, seed++);
        jobs.emplace_back(qft(24), g, seed++);
        jobs.emplace_back(qft(32), g, seed++);
    }
    return jobs;
}

/**
 * Thread scaling of transpileBatch: state.range(0) worker threads over
 * the fixed 16-job workload.  Compare the 1-thread and 4-thread rows
 * for the wall-clock speedup; `swaps_total` is the checksum proving
 * every thread count computed identical results.
 */
void
BM_TranspileBatch(benchmark::State &state)
{
    const std::vector<TranspileJob> jobs = batchJobs();
    const PassManager pm =
        passManagerFromSpec("dense,stochastic-route=10,basis=sqiswap");
    const unsigned threads = static_cast<unsigned>(state.range(0));

    // Single-thread reference (computed outside the timed loop): every
    // thread count must reproduce it exactly.
    std::size_t reference = 0;
    for (const TranspileResult &r : transpileBatch(jobs, pm, 1)) {
        reference += r.metrics.swaps_total;
    }

    std::size_t checksum = 0;
    for (auto _ : state) {
        const std::vector<TranspileResult> results =
            transpileBatch(jobs, pm, threads);
        checksum = 0;
        for (const TranspileResult &r : results) {
            checksum += r.metrics.swaps_total;
        }
        benchmark::DoNotOptimize(checksum);
        if (checksum != reference) {
            state.SkipWithError(
                "batch results diverged from the serial reference");
            break;
        }
    }
    state.counters["swaps_total"] = static_cast<double>(checksum);
    state.counters["jobs"] = static_cast<double>(jobs.size());
}
BENCHMARK(BM_TranspileBatch)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

/**
 * The observability layer's disabled path: with no tracer installed
 * (the default everywhere), a ScopedSpan must cost one relaxed
 * pointer load plus a branch, and a sharded Counter::add one relaxed
 * fetch_add — cheap enough to leave in every pass, task, and cache
 * access permanently.  `spans` is deterministic (the fixed per-
 * iteration span count) so compare_bench.py pins the row's presence;
 * the timing trajectory shows if the "free when off" claim drifts.
 */
void
BM_ObsDisabledSpan(benchmark::State &state)
{
    setActiveTracer(nullptr); // belt and braces: measure the off path
    Counter counter;
    constexpr int kSpans = 64;
    for (auto _ : state) {
        for (int i = 0; i < kSpans; ++i) {
            ScopedSpan span("bench", "bench");
            counter.add();
        }
        benchmark::DoNotOptimize(counter.value());
    }
    state.counters["spans"] = static_cast<double>(kSpans);
}
BENCHMARK(BM_ObsDisabledSpan);

/**
 * Distance-oracle query latency: the same fixed 4096-pair sample on
 * the 1024-qubit chiplet lattice answered by the flat table (one array
 * read) and by the hierarchical portal oracle (portal-pair minimum).
 * `score_checksum` sums every answered hop count and must be identical
 * across the two rows — the backends are exact, so only time may
 * differ.  The gap is the price of the 16x memory compression the
 * hierarchical oracle buys at kiloqubit scale (see docs/performance.md).
 */
void
distanceOracleQueryBench(benchmark::State &state,
                         DistanceOraclePolicy policy)
{
    CouplingGraph g = namedTopology("chiplet-1024");
    g.setOraclePolicy(policy);
    g.ensureDistanceOracle();
    const DistanceOracle &oracle = g.distanceOracle();
    const int n = g.numQubits();

    Rng rng(0x0DAC1E);
    std::vector<std::pair<int, int>> pairs;
    pairs.reserve(4096);
    for (int i = 0; i < 4096; ++i) {
        pairs.emplace_back(
            static_cast<int>(rng.next() % static_cast<std::uint64_t>(n)),
            static_cast<int>(rng.next() % static_cast<std::uint64_t>(n)));
    }

    long total = 0;
    for (auto _ : state) {
        total = 0;
        for (const auto &[a, b] : pairs) {
            total += oracle.distanceRaw(a, b);
        }
        benchmark::DoNotOptimize(total);
    }
    state.counters["candidates"] = static_cast<double>(pairs.size());
    state.counters["score_checksum"] = static_cast<double>(total);
}

void
BM_DistanceOracleQueryFlat(benchmark::State &state)
{
    distanceOracleQueryBench(state, DistanceOraclePolicy::Flat);
}
BENCHMARK(BM_DistanceOracleQueryFlat);

void
BM_DistanceOracleQueryHier(benchmark::State &state)
{
    distanceOracleQueryBench(state, DistanceOraclePolicy::Hierarchical);
}
BENCHMARK(BM_DistanceOracleQueryHier);

/**
 * Hierarchical-oracle construction cost on the named kiloqubit chiplet
 * lattices (1024 and 4096 qubits): one BFS per portal plus per-cluster
 * restricted BFS.  `score_checksum` is the built structure's byte size
 * — deterministic, and the number the flat table's n^2 growth is being
 * traded against (2 MiB vs 32 MiB at 4096 qubits).
 */
void
BM_DistanceOracleBuild(benchmark::State &state)
{
    const CouplingGraph base = namedTopology(
        state.range(0) == 1024 ? "chiplet-1024" : "chiplet-4096");
    std::size_t bytes = 0;
    for (auto _ : state) {
        CouplingGraph g = base;
        g.setOraclePolicy(DistanceOraclePolicy::Hierarchical);
        g.ensureDistanceOracle();
        bytes = g.distanceOracle().memoryBytes();
        benchmark::DoNotOptimize(bytes);
    }
    state.counters["score_checksum"] = static_cast<double>(bytes);
}
BENCHMARK(BM_DistanceOracleBuild)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    // Map our stable `--json` shorthand onto google-benchmark's flag
    // before the library parses the command line.
    static char json_flag[] = "--benchmark_format=json";
    std::vector<char *> args(argv, argv + argc);
    for (char *&arg : args) {
        if (std::string(arg) == "--json") {
            arg = json_flag;
        }
    }
    int args_count = static_cast<int>(args.size());
    benchmark::Initialize(&args_count, args.data());
    if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
