/**
 * @file
 * Ablation: which error regime are you in? (paper Sec. 3.1)
 *
 * The paper keeps two datasets — total gates and critical-path duration —
 * because control-limited machines care about the former and
 * decoherence-limited machines about the latter.  This bench folds both
 * into estimated circuit success probabilities for the Fig. 13 co-designs
 * on a QV workload, at a representative per-pulse error and a sweep of
 * coherence times.  Expected shape: the sqrt(iSWAP) machines win both
 * regimes, and their lead *grows* as coherence shrinks (the half-pulse
 * advantage).
 */

#include <iostream>

#include "bench_util.hpp"
#include "circuits/registry.hpp"
#include "codesign/experiment.hpp"
#include "common/table.hpp"
#include "fidelity/regimes.hpp"

int
main(int argc, char **argv)
{
    using namespace snail;
    const bool quick = snail_bench::quickMode(argc, argv);
    const int width = quick ? 10 : 14;
    const double eps = 0.002; // per-pulse control error

    SweepOptions opts;
    opts.widths = {width};
    opts.stochastic_trials = quick ? 6 : 10;
    const auto series = codesignSweep({BenchmarkKind::QuantumVolume},
                                      fig13Backends(), opts);

    printBanner(std::cout,
                "Estimated QV-" + std::to_string(width) +
                    " success probability per co-design "
                    "(eps=0.002/pulse; T in iSWAP-pulse units)");
    TableWriter table({"machine", "2Q pulses", "crit duration",
                       "gate-limited F", "F @ T=2000", "F @ T=500"});
    for (const Series &s : series) {
        if (s.points.empty()) {
            continue;
        }
        const TranspileMetrics &m = s.points[0].metrics;
        table.addRow({s.machine, std::to_string(m.basis_2q_total),
                      TableWriter::num(m.duration_critical, 1),
                      TableWriter::num(gateLimitedFidelity(m, eps), 4),
                      TableWriter::num(combinedFidelity(m, eps, 2000.0), 4),
                      TableWriter::num(combinedFidelity(m, eps, 500.0), 4)});
    }
    table.print(std::cout);
    std::cout << "\nShorter sqrt(iSWAP) pulses stretch the co-design lead "
                 "as coherence budgets tighten.\n";
    return 0;
}
