/**
 * @file
 * Reproduces Table 2: structural properties of the scaled 84-qubit
 * topologies, printed next to the paper's reported values.
 */

#include <iostream>

#include "common/table.hpp"
#include "topology/registry.hpp"

namespace
{

struct PaperRow
{
    const char *name;
    double dia;
    double avgd;
    double avgc;
};

/** Table 2 of the paper. */
const PaperRow kPaper[] = {
    {"heavy-hex-84", 21.0, 8.47, 2.26},
    {"hex-84", 17.0, 6.95, 2.71},
    {"square-84", 17.0, 6.26, 3.55},
    {"lattice-altdiag-84", 11.0, 4.62, 5.12},
    {"tree-84", 5.0, 3.91, 4.71},
    {"tree-rr-84", 5.0, 3.65, 4.71},
    {"hypercube-84", 7.0, 3.32, 6.0},
};

} // namespace

int
main()
{
    using snail::TableWriter;
    snail::printBanner(std::cout,
                       "Table 2: Scaled Topologies and Connectivities (84q)");
    TableWriter table({"Topology", "Qubits", "Dia", "AvgD", "AvgC",
                       "paper:Dia", "paper:AvgD", "paper:AvgC"});
    for (const PaperRow &row : kPaper) {
        const snail::CouplingGraph g = snail::namedTopology(row.name);
        table.addRow({row.name, std::to_string(g.numQubits()),
                      std::to_string(g.diameter()),
                      TableWriter::num(g.averageDistance(), 2),
                      TableWriter::num(g.averageDegree(), 2),
                      TableWriter::num(row.dia, 1),
                      TableWriter::num(row.avgd, 2),
                      TableWriter::num(row.avgc, 2)});
    }
    table.print(std::cout);
    std::cout << "\nNotes: square-84 (7x12 grid), lattice-altdiag-84, and "
                 "hypercube-84 (incomplete 7-cube) match the paper "
                 "exactly; tree AvgC differs because the paper's module "
                 "edge rule is not fully specified (see EXPERIMENTS.md).\n";
    return 0;
}
