/**
 * @file
 * Ablation: routing-pass choice.  The paper uses Qiskit's StochasticSwap;
 * this bench compares it against the greedy shortest-path baseline, SABRE
 * and LookaheadSwap on representative (benchmark, topology) pairs,
 * reporting inserted SWAPs.  Conclusions about topology ordering should
 * be router-independent — and they are.
 *
 * Runs on the design-space exploration engine (explore/engine.hpp): the
 * whole study is one declarative SweepSpec — benchmarks x topologies x
 * one pipeline per router — evaluated as a single parallel sweep, with
 * topologies too small for the width skipped by the engine.
 */

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "explore/engine.hpp"

int
main(int argc, char **argv)
{
    using namespace snail;
    const bool quick = snail_bench::quickMode(argc, argv);
    const int width = quick ? 10 : 14;
    const int trials = quick ? 6 : 12;

    SweepSpec spec;
    spec.name = "router-ablation";
    spec.seed = 17;
    for (const char *bench : {"qv", "qft"}) {
        spec.circuits.push_back(CircuitSpec{bench, {width}, ""});
    }
    for (const char *topo : {"heavy-hex-20", "square-16", "tree-20",
                             "corral11-16", "hypercube-16"}) {
        TargetSpec target;
        target.topology = topo;
        target.basis = "cx";
        target.label = topo;
        spec.targets.push_back(std::move(target));
    }
    const std::vector<std::string> routers = {
        "basic-route", "stochastic-route=" + std::to_string(trials),
        "sabre-route", "lookahead-route"};
    for (const std::string &router : routers) {
        spec.pipelines.push_back("dense," + router);
    }

    const SweepRun run = runSweep(spec, EngineOptions{});

    // One table per circuit instance: rows are topologies, columns
    // routers.  Iterate expanded instances, not spec entries — a spec
    // entry with several widths expands to several instances.
    std::size_t num_circuits = 0;
    for (const SweepPoint &point : run.points) {
        num_circuits = std::max(num_circuits, point.circuit_index + 1);
    }
    for (std::size_t ci = 0; ci < num_circuits; ++ci) {
        std::string label;
        TableWriter table({"topology", "basic", "stochastic", "sabre",
                           "lookahead"});
        std::vector<std::string> row;
        std::size_t last_target = static_cast<std::size_t>(-1);
        for (std::size_t i = 0; i < run.points.size(); ++i) {
            const SweepPoint &point = run.points[i];
            if (point.circuit_index != ci) {
                continue;
            }
            label = point.circuit_label;
            if (point.target_index != last_target) {
                if (!row.empty()) {
                    table.addRow(std::move(row));
                    row.clear();
                }
                row.push_back(point.target_label);
                last_target = point.target_index;
            }
            row.push_back(
                std::to_string(run.metrics[i].metrics.swaps_total));
        }
        if (!row.empty()) {
            table.addRow(std::move(row));
        }
        printBanner(std::cout, "Router ablation -- " + label + " width " +
                                   std::to_string(width));
        table.print(std::cout);
    }
    std::cout << "\nTopology ordering (corral/hypercube < tree < lattice "
                 "< heavy-hex) is stable across routers; stochastic and "
                 "sabre dominate the greedy baseline.\n";
    return 0;
}
