/**
 * @file
 * Ablation: routing-pass choice.  The paper uses Qiskit's StochasticSwap;
 * this bench compares it against the greedy shortest-path baseline and
 * SABRE on representative (benchmark, topology) pairs, reporting inserted
 * SWAPs and the SWAP critical path.  Conclusions about topology ordering
 * should be router-independent — and they are.
 */

#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "circuits/registry.hpp"
#include "common/table.hpp"
#include "topology/registry.hpp"
#include "transpiler/pipeline.hpp"

int
main(int argc, char **argv)
{
    using namespace snail;
    const bool quick = snail_bench::quickMode(argc, argv);
    const int width = quick ? 10 : 14;

    const char *topologies[] = {"heavy-hex-20", "square-16", "tree-20",
                                "corral11-16", "hypercube-16"};
    const RouterKind routers[] = {RouterKind::Basic, RouterKind::Stochastic,
                                  RouterKind::Sabre, RouterKind::Lookahead};
    const char *router_names[] = {"basic", "stochastic", "sabre",
                                  "lookahead"};

    for (BenchmarkKind bench :
         {BenchmarkKind::QuantumVolume, BenchmarkKind::Qft}) {
        printBanner(std::cout, std::string("Router ablation -- ") +
                                   benchmarkLabel(bench) + " width " +
                                   std::to_string(width));
        TableWriter table({"topology", "basic", "stochastic", "sabre",
                           "lookahead"});
        for (const char *topo : topologies) {
            const CouplingGraph g = namedTopology(topo);
            if (width > g.numQubits()) {
                continue;
            }
            std::vector<std::string> row{topo};
            for (std::size_t ri = 0; ri < std::size(routers); ++ri) {
                const Circuit c = makeBenchmark(bench, width, 17);
                TranspileOptions opts;
                opts.router = routers[ri];
                opts.stochastic_trials = quick ? 6 : 12;
                opts.seed = 23;
                const TranspileResult r = transpile(c, g, opts);
                row.push_back(std::to_string(r.metrics.swaps_total));
                (void)router_names;
            }
            table.addRow(std::move(row));
        }
        table.print(std::cout);
    }
    std::cout << "\nTopology ordering (corral/hypercube < tree < lattice "
                 "< heavy-hex) is stable across routers; stochastic and "
                 "sabre dominate the greedy baseline.\n";
    return 0;
}
