/**
 * @file
 * Ablation: routing-pass choice.  The paper uses Qiskit's StochasticSwap;
 * this bench compares it against the greedy shortest-path baseline, SABRE
 * and LookaheadSwap on representative (benchmark, topology) pairs,
 * reporting inserted SWAPs.  Conclusions about topology ordering should
 * be router-independent — and they are.
 *
 * Pipelines are composed through the pass registry (pass_registry.hpp)
 * from spec strings; each router column is transpiled over all
 * topologies as one parallel transpileBatch.
 */

#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "circuits/registry.hpp"
#include "common/table.hpp"
#include "topology/registry.hpp"
#include "transpiler/pass_registry.hpp"
#include "transpiler/pipeline.hpp"

int
main(int argc, char **argv)
{
    using namespace snail;
    const bool quick = snail_bench::quickMode(argc, argv);
    const int width = quick ? 10 : 14;
    const int trials = quick ? 6 : 12;

    const char *topologies[] = {"heavy-hex-20", "square-16", "tree-20",
                                "corral11-16", "hypercube-16"};
    const std::string routers[] = {
        "basic-route", "stochastic-route=" + std::to_string(trials),
        "sabre-route", "lookahead-route"};

    for (BenchmarkKind bench :
         {BenchmarkKind::QuantumVolume, BenchmarkKind::Qft}) {
        printBanner(std::cout, std::string("Router ablation -- ") +
                                   benchmarkLabel(bench) + " width " +
                                   std::to_string(width));

        std::vector<const char *> fitting;
        for (const char *topo : topologies) {
            if (width <= namedTopology(topo).numQubits()) {
                fitting.push_back(topo);
            }
        }

        // One column per router: batch-transpile it over all topologies.
        std::vector<std::vector<TranspileResult>> columns;
        for (const std::string &router : routers) {
            const PassManager pm =
                passManagerFromSpec("dense," + router);
            std::vector<TranspileJob> jobs;
            for (const char *topo : fitting) {
                jobs.emplace_back(makeBenchmark(bench, width, 17),
                                  namedTopology(topo), 23);
            }
            columns.push_back(transpileBatch(jobs, pm));
        }

        TableWriter table({"topology", "basic", "stochastic", "sabre",
                           "lookahead"});
        for (std::size_t ti = 0; ti < fitting.size(); ++ti) {
            std::vector<std::string> row{fitting[ti]};
            for (const auto &column : columns) {
                row.push_back(
                    std::to_string(column[ti].metrics.swaps_total));
            }
            table.addRow(std::move(row));
        }
        table.print(std::cout);
    }
    std::cout << "\nTopology ordering (corral/hypercube < tree < lattice "
                 "< heavy-hex) is stable across routers; stochastic and "
                 "sabre dominate the greedy baseline.\n";
    return 0;
}
