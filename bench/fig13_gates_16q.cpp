/**
 * @file
 * Reproduces Fig. 13: total native 2Q gate counts and critical-path pulse
 * durations after basis decomposition, for the 16-20 qubit co-designed
 * machines: Heavy-Hex+CNOT (IBM/CR), Square-Lattice+SYC (Google/FSIM),
 * and the SNAIL sqrt(iSWAP) machines (Tree, Tree-RR, Hypercube,
 * Corral_{1,1}).
 *
 * Expected shape: the Corral + sqrt(iSWAP) co-design consistently wins
 * across every benchmark; SYC's 4-gate generic decomposition lifts
 * Square-Lattice above Heavy-Hex+CR despite its richer connectivity.
 */

#include <iostream>

#include "bench_util.hpp"
#include "codesign/experiment.hpp"

int
main(int argc, char **argv)
{
    using namespace snail;
    const bool quick = snail_bench::quickMode(argc, argv);

    SweepOptions opts;
    opts.widths = quick ? snail_bench::range(6, 14, 4)
                        : snail_bench::range(4, 16, 2);
    opts.stochastic_trials = quick ? 4 : 10;

    const auto series = codesignSweep(allBenchmarks(), fig13Backends(), opts);

    printSeriesTables(std::cout, series, metricBasis2qTotal,
                      "Fig. 13 (top): Total 2Q count, 16-20q co-designs");
    printSeriesTables(std::cout, series, metricDurationCritical,
                      "Fig. 13 (bottom): Pulse duration, 16-20q co-designs");
    return 0;
}
