/**
 * @file
 * Reproduces Fig. 14: total native 2Q gate counts and critical-path pulse
 * durations after basis decomposition for the 84-qubit co-designed
 * machines (Heavy-Hex+CX, Square-Lattice+SYC, Tree/Tree-RR/Hypercube with
 * sqrt(iSWAP)).
 *
 * Expected shape: Heavy-Hex scales worst for QV and best for QFT;
 * Tree-RR scales worst for QFT and best for GHZ; the hypercube is among
 * the best everywhere (paper Sec. 6.2).
 */

#include <iostream>

#include "bench_util.hpp"
#include "codesign/experiment.hpp"

int
main(int argc, char **argv)
{
    using namespace snail;
    const bool quick = snail_bench::quickMode(argc, argv);

    SweepOptions opts;
    opts.widths = quick ? snail_bench::range(16, 64, 24)
                        : snail_bench::range(8, 80, 8);
    opts.stochastic_trials = quick ? 4 : 10;

    const auto series = codesignSweep(allBenchmarks(), fig14Backends(), opts);

    printSeriesTables(std::cout, series, metricBasis2qTotal,
                      "Fig. 14 (top): Total 2Q count, 84q co-designs");
    printSeriesTables(std::cout, series, metricDurationCritical,
                      "Fig. 14 (bottom): Pulse duration, 84q co-designs");
    return 0;
}
