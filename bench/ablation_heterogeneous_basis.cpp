/**
 * @file
 * Extension ablation (paper future work, Sec. 7): heterogeneous basis
 * gates.
 *
 * Models hybrid machines where a fraction of the couplings are CR-style
 * CNOT links (e.g. chiplet-boundary couplers) while the rest are SNAIL
 * sqrt(iSWAP) couplings.  Sweeps the CNOT fraction and reports total
 * native 2Q pulses and critical-path pulse duration.
 *
 * Expected shape: both metrics interpolate monotonically (modulo router
 * noise) between the all-sqrt(iSWAP) machine (best) and the all-CNOT
 * machine (worst), quantifying how much a partial SNAIL upgrade buys.
 */

#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "circuits/registry.hpp"
#include "common/table.hpp"
#include "topology/registry.hpp"
#include "transpiler/hetero_basis.hpp"
#include "transpiler/pipeline.hpp"

namespace
{

using namespace snail;

/** Deterministic hash deciding which edges become CNOT links. */
bool
edgeSelected(int a, int b, int percent)
{
    const unsigned h = static_cast<unsigned>(a * 2654435761u) ^
                       static_cast<unsigned>(b * 40503u) ^ 0x9E3779B9u;
    return static_cast<int>(h % 100u) < percent;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = snail_bench::quickMode(argc, argv);
    const int width = quick ? 10 : 14;

    for (const char *topo : {"tree-20", "square-16"}) {
        const CouplingGraph device = namedTopology(topo);
        if (width > device.numQubits()) {
            continue;
        }
        printBanner(std::cout,
                    std::string("Heterogeneous basis sweep -- QV width ") +
                        std::to_string(width) + " on " + topo);
        TableWriter table({"cnot_edges_%", "edges_cnot", "2Q_pulses",
                           "crit_duration"});

        const Circuit circuit =
            makeBenchmark(BenchmarkKind::QuantumVolume, width, 17);
        TranspileOptions opts;
        opts.seed = 23;
        opts.stochastic_trials = quick ? 6 : 12;
        // Route once; the hetero scoring reuses the same physical
        // circuit so rows differ only in basis assignment.
        const TranspileResult routed = transpile(circuit, device, opts);

        for (int percent : {0, 25, 50, 75, 100}) {
            HeterogeneousBasis bases(device,
                                     BasisSpec{BasisKind::SqISwap});
            const std::size_t assigned = bases.setWhere(
                [percent](int a, int b) {
                    return edgeSelected(a, b, percent);
                },
                BasisSpec{BasisKind::CNOT});
            const TranslationStats stats =
                heterogeneousTranslationStats(routed.routed, bases);
            table.addRow({std::to_string(percent),
                          std::to_string(assigned),
                          std::to_string(stats.total_2q),
                          TableWriter::num(stats.critical_duration, 1)});
        }
        table.print(std::cout);
    }
    std::cout << "\nPulse duration interpolates between the all-SNAIL "
                 "machine (0% CNOT links) and the all-CR machine (100%): "
                 "partial SNAIL coverage already recovers a large share "
                 "of the co-design win.\n";
    return 0;
}
