/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries.
 *
 * Every bench prints the rows/series of one paper table or figure.  The
 * full parameter grids can take minutes; set SNAILQC_QUICK=1 (or pass
 * --quick) to run a reduced grid with the same shape.
 */

#ifndef SNAILQC_BENCH_BENCH_UTIL_HPP
#define SNAILQC_BENCH_BENCH_UTIL_HPP

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace snail_bench
{

/** True when a reduced grid was requested. */
inline bool
quickMode(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            return true;
        }
    }
    const char *env = std::getenv("SNAILQC_QUICK");
    return env != nullptr && std::string(env) != "0";
}

/** Inclusive integer range with a stride. */
inline std::vector<int>
range(int lo, int hi, int step)
{
    std::vector<int> out;
    for (int v = lo; v <= hi; v += step) {
        out.push_back(v);
    }
    return out;
}

} // namespace snail_bench

#endif // SNAILQC_BENCH_BENCH_UTIL_HPP
