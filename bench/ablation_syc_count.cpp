/**
 * @file
 * Ablation: the SYC generic decomposition count.
 *
 * The paper (Observation 1) uses the best known *analytic* bound of
 * exactly 4 SYC gates per generic 2Q unitary, which lifts Square-Lattice
 * + SYC above Heavy-Hex + CR.  Numerical searches suggest 3 often
 * suffices; this ablation re-scores Fig. 13's comparison under the
 * optimistic count to show how much of the SNAIL advantage survives
 * (all of it — the sqrt(iSWAP) machines still win on duration).
 */

#include <iostream>

#include "bench_util.hpp"
#include "circuits/registry.hpp"
#include "codesign/experiment.hpp"
#include "common/table.hpp"

int
main(int argc, char **argv)
{
    using namespace snail;
    const bool quick = snail_bench::quickMode(argc, argv);
    const int width = quick ? 10 : 14;

    Backend syc_analytic = makeBackend("square-16", BasisKind::Sycamore);
    Backend syc_optimistic = makeBackend("square-16", BasisKind::Sycamore);
    syc_optimistic.basis.optimistic_syc = true;
    syc_optimistic.name += "-optimistic3";
    const Backend machines[] = {
        makeBackend("heavy-hex-20", BasisKind::CNOT),
        syc_analytic,
        syc_optimistic,
        makeBackend("corral11-16", BasisKind::SqISwap),
    };

    for (BenchmarkKind bench :
         {BenchmarkKind::QuantumVolume, BenchmarkKind::QaoaVanilla}) {
        printBanner(std::cout, std::string("SYC count ablation -- ") +
                                   benchmarkLabel(bench) + " width " +
                                   std::to_string(width));
        TableWriter table({"machine", "2Q pulses", "pulse duration"});
        for (const Backend &machine : machines) {
            if (width > machine.topology.numQubits()) {
                continue;
            }
            SweepOptions opts;
            opts.widths = {width};
            opts.stochastic_trials = quick ? 6 : 10;
            const auto series = codesignSweep({bench}, {machine}, opts);
            if (series.empty() || series[0].points.empty()) {
                continue;
            }
            const TranspileMetrics &m = series[0].points[0].metrics;
            table.addRow({machine.name,
                          std::to_string(m.basis_2q_total),
                          TableWriter::num(m.duration_critical, 1)});
        }
        table.print(std::cout);
    }
    return 0;
}
