/**
 * @file
 * Reproduces Fig. 6 (simulated): parametrically driven exchange between
 * two qubits of a SNAIL module.  The paper shows hardware data — an
 * excitation chevron over pulse length x pump detuning; we regenerate it
 * from the rotating-frame model (see sim/parametric_exchange.hpp).
 *
 * Expected shape: full-contrast sinusoidal swapping on resonance,
 * faster/partial fringes as |detuning| grows — the chevron.  The bench
 * also prints the Eq. 9 pulse-length ladder for the n-root-iSWAP family.
 */

#include <cmath>
#include <iostream>

#include "common/table.hpp"
#include "linalg/matrix.hpp"
#include "gates/gate.hpp"
#include "sim/parametric_exchange.hpp"

int
main()
{
    using namespace snail;

    const double g = 1.0; // normalized coupling

    printBanner(std::cout,
                "Fig. 6 (simulated): excitation-swap probability, pulse "
                "length x pump detuning");
    // Time grid 0..2 full swaps; detuning grid +-3 g.
    std::vector<double> times;
    for (int i = 0; i <= 24; ++i) {
        times.push_back(static_cast<double>(i) * M_PI / 12.0);
    }
    std::cout << "rows: detuning/g from +3 to -3; cols: g*t from 0 to "
                 "2*pi; cell = P(swap) in tenths (9 ~ 1.0)\n\n";
    for (int d = 6; d >= -6; --d) {
        const ExchangeDrive drive{g, static_cast<double>(d) / 2.0};
        std::cout << (d >= 0 ? "+" : "") << d / 2.0 << "\t";
        for (double p : chevronRow(drive, times)) {
            const int level = std::min(9, static_cast<int>(p * 10.0));
            std::cout << level;
        }
        std::cout << "\n";
    }

    printBanner(std::cout,
                "Eq. 9 ladder: resonant pulse lengths for n-root iSWAP");
    TableWriter table({"root n", "g*t", "matches gate library"});
    for (double n : {1.0, 2.0, 3.0, 4.0}) {
        const double t = pulseLengthForRoot(g, n);
        const Matrix u = resonantExchangeUnitary(g, t);
        const bool match =
            allClose(u, gates::nrootIswap(n).matrix(), 1e-12);
        table.addRow({TableWriter::count(n), TableWriter::num(g * t, 4),
                      match ? "yes" : "NO"});
    }
    table.print(std::cout);
    return 0;
}
