/**
 * @file
 * Extension ablation (ours): the extended workloads (Bernstein-
 * Vazirani, VQE ansatz, W state) on the paper's 16-20 qubit machines.
 *
 * Each workload stresses a different connectivity pattern — BV is
 * one-to-many (every oracle CX shares the ancilla), the VQE ansatz and
 * the W state are nearest-neighbor chains.  Expected shape: the SNAIL
 * topologies (Tree, Corral) win BV decisively because their router
 * qubits/SNAIL neighborhoods host the shared ancilla, while the chain
 * workloads route nearly free on every topology (any Hamiltonian path
 * embeds a chain).
 */

#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "circuits/registry.hpp"
#include "common/table.hpp"
#include "topology/registry.hpp"
#include "transpiler/pipeline.hpp"

namespace
{

using namespace snail;

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = snail_bench::quickMode(argc, argv);
    const int width = quick ? 10 : 14;
    const char *topologies[] = {"heavy-hex-20", "square-16", "tree-20",
                                "tree-rr-20", "corral11-16",
                                "hypercube-16"};

    for (BenchmarkKind bench : {BenchmarkKind::BernsteinVazirani,
                                BenchmarkKind::VqeAnsatz,
                                BenchmarkKind::WState}) {
        printBanner(std::cout,
                    std::string("Extended workload -- ") +
                        benchmarkLabel(bench) + " width " +
                        std::to_string(width));
        TableWriter table({"topology", "swaps_total", "swaps_critical",
                           "2Q_sqiswap", "crit_duration"});
        for (const char *topo : topologies) {
            const CouplingGraph device = namedTopology(topo);
            if (width > device.numQubits()) {
                continue;
            }
            const Circuit c = makeBenchmark(bench, width, 17);
            TranspileOptions opts;
            opts.basis = BasisSpec{BasisKind::SqISwap};
            opts.seed = 23;
            opts.stochastic_trials = quick ? 6 : 12;
            const TranspileResult r = transpile(c, device, opts);
            table.addRow({topo, std::to_string(r.metrics.swaps_total),
                          TableWriter::num(r.metrics.swaps_critical, 0),
                          std::to_string(r.metrics.basis_2q_total),
                          TableWriter::num(r.metrics.duration_critical,
                                           1)});
        }
        table.print(std::cout);
    }
    std::cout << "\nBV favors the SNAIL topologies (shared-ancilla "
                 "traffic concentrates on high-degree router qubits); "
                 "the chain-shaped VQE/W-state workloads route cheaply "
                 "everywhere.\n";
    return 0;
}
