/**
 * @file
 * Reproduces Table 1: structural properties (qubits, diameter, average
 * distance, average connectivity) of the 16-20 qubit topologies, printed
 * next to the paper's reported values.
 *
 * The topology list is resolved through the exploration engine's
 * target-expansion layer (explore/sweep_spec.hpp) — the same TargetSpec
 * entries a `snailqc sweep` spec would use — so this bench doubles as a
 * smoke test of that resolution path.
 */

#include <iostream>

#include "common/table.hpp"
#include "explore/sweep_spec.hpp"

namespace
{

struct PaperRow
{
    const char *name;
    double dia;
    double avgd;
    double avgc;
};

/** Table 1 of the paper. */
const PaperRow kPaper[] = {
    {"heavy-hex-20", 8.0, 3.77, 2.1},
    {"hex-20", 7.0, 3.37, 2.45},
    {"square-16", 6.0, 2.5, 3.0},
    {"tree-20", 3.0, 2.15, 4.6},
    {"tree-rr-20", 3.0, 2.03, 4.6},
    {"corral11-16", 4.0, 2.06, 5.0},
    {"corral12-16", 2.0, 1.5, 6.0},
    {"hypercube-16", 4.0, 2.0, 4.0},
};

} // namespace

int
main()
{
    using namespace snail;

    SweepSpec spec;
    for (const PaperRow &row : kPaper) {
        TargetSpec target;
        target.topology = row.name;
        target.basis = "sqiswap"; // Table 1 is structural; any basis
        target.label = row.name;
        spec.targets.push_back(std::move(target));
    }
    const std::vector<Target> targets = expandTargets(spec);

    printBanner(std::cout,
                "Table 1: Topologies and Connectivities (16-20q)");
    TableWriter table({"Topology", "Qubits", "Dia", "AvgD", "AvgC",
                       "paper:Dia", "paper:AvgD", "paper:AvgC"});
    for (std::size_t i = 0; i < targets.size(); ++i) {
        const PaperRow &row = kPaper[i];
        const CouplingGraph &g = targets[i].graph();
        table.addRow({targets[i].name(), std::to_string(g.numQubits()),
                      std::to_string(g.diameter()),
                      TableWriter::num(g.averageDistance(), 2),
                      TableWriter::num(g.averageDegree(), 2),
                      TableWriter::num(row.dia, 1),
                      TableWriter::num(row.avgd, 2),
                      TableWriter::num(row.avgc, 2)});
    }
    table.print(std::cout);
    std::cout << "\nNotes: AvgD uses the paper's n^2 normalization; "
                 "heavy-hex/hex carvings and the Corral post-sharing rule "
                 "are reconstructions (see EXPERIMENTS.md).\n";
    return 0;
}
