/**
 * @file
 * Reproduces Fig. 12: total and critical-path SWAP gates at 84 qubits,
 * comparing the scaled SNAIL topologies (Tree, Tree-RR) and the
 * hypercube against Heavy-Hex and Square-Lattice.
 *
 * Expected shape (paper Sec. 6.1): for an 80-qubit QV circuit, Heavy-Hex
 * to Tree is a ~54% total-SWAP / ~80% critical-path-SWAP reduction, and
 * the hypercube cuts a further ~42% / ~54% from the Tree.
 */

#include <iostream>

#include "bench_util.hpp"
#include "codesign/experiment.hpp"

int
main(int argc, char **argv)
{
    using namespace snail;
    const bool quick = snail_bench::quickMode(argc, argv);

    SweepOptions opts;
    opts.widths = quick ? snail_bench::range(16, 64, 24)
                        : snail_bench::range(8, 80, 8);
    opts.stochastic_trials = quick ? 4 : 10;

    const std::vector<std::string> topologies = {
        "heavy-hex-84", "square-84", "tree-84", "tree-rr-84",
        "hypercube-84"};
    const auto series = swapSweep(allBenchmarks(), topologies, opts);

    printSeriesTables(std::cout, series, metricSwapsTotal,
                      "Fig. 12 (top): Total SWAP count, scaled SNAIL");
    printSeriesTables(std::cout, series, metricSwapsCritical,
                      "Fig. 12 (bottom): Critical-path SWAPs, scaled SNAIL");

    // The Sec. 6.1 QV-80 waypoints.
    double hh_tot = 0, hh_crit = 0, tr_tot = 0, tr_crit = 0, hc_tot = 0,
           hc_crit = 0;
    for (const Series &s : series) {
        if (s.benchmark != std::string("Quantum Volume") ||
            s.points.empty()) {
            continue;
        }
        const SeriesPoint &last = s.points.back();
        if (s.machine == "heavy-hex-84") {
            hh_tot = metricSwapsTotal(last.metrics);
            hh_crit = metricSwapsCritical(last.metrics);
        } else if (s.machine == "tree-84") {
            tr_tot = metricSwapsTotal(last.metrics);
            tr_crit = metricSwapsCritical(last.metrics);
        } else if (s.machine == "hypercube-84") {
            hc_tot = metricSwapsTotal(last.metrics);
            hc_crit = metricSwapsCritical(last.metrics);
        }
    }
    if (hh_tot > 0 && tr_tot > 0 && hc_tot > 0) {
        std::cout << "\nLargest-QV waypoints (paper Sec. 6.1, QV-80: "
                     "-54.3% total / -79.8% critical Heavy-Hex->Tree; "
                     "-42.5% / -54.3% Tree->Hypercube):\n";
        std::cout << "  Heavy-Hex -> Tree: "
                  << 100.0 * (1.0 - tr_tot / hh_tot) << "% total, "
                  << 100.0 * (1.0 - tr_crit / hh_crit) << "% critical\n";
        std::cout << "  Tree -> Hypercube: "
                  << 100.0 * (1.0 - hc_tot / tr_tot) << "% total, "
                  << 100.0 * (1.0 - hc_crit / tr_crit) << "% critical\n";
    }
    return 0;
}
