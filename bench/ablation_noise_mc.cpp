/**
 * @file
 * Extension ablation (ours): end-to-end Monte-Carlo fidelity of the
 * co-designed machines.
 *
 * The paper ranks (topology, basis) designs by two surrogates — total
 * native pulses and critical-path pulse duration.  This bench closes
 * the loop: it transpiles a Quantum Volume circuit onto each machine,
 * injects stochastic Pauli noise calibrated per native pulse plus
 * duration-proportional dephasing, and reports the simulated state
 * fidelity next to both surrogates.
 *
 * Expected shape: the fidelity ordering matches the surrogate ordering
 * — the SNAIL corral/hypercube + sqrt(iSWAP) co-designs beat CR/heavy-
 * hex and SYC/square-lattice, which is the paper's headline thesis
 * restated as an end-to-end simulation.
 */

#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "circuits/registry.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "fidelity/codesign_noise.hpp"
#include "topology/registry.hpp"
#include "transpiler/pipeline.hpp"

namespace
{

using namespace snail;

struct Design
{
    const char *topology;
    BasisKind basis;
    const char *label;
};

/**
 * Remap a routed circuit onto its active qubits only.  Spectator
 * qubits stay in |0>, which every Z dephasing error leaves invariant,
 * so compaction is exactly fidelity-preserving under this noise model
 * while shrinking the statevector by orders of magnitude on large
 * devices.
 */
Circuit
compactToActive(const Circuit &routed)
{
    const std::vector<Qubit> active = routed.activeQubits();
    std::vector<int> dense(static_cast<std::size_t>(routed.numQubits()),
                           -1);
    for (std::size_t i = 0; i < active.size(); ++i) {
        dense[static_cast<std::size_t>(active[i])] =
            static_cast<int>(i);
    }
    Circuit out(static_cast<int>(active.size()),
                routed.name() + "-compact");
    for (const auto &op : routed.instructions()) {
        std::vector<Qubit> mapped;
        mapped.reserve(op.qubits().size());
        for (Qubit q : op.qubits()) {
            mapped.push_back(dense[static_cast<std::size_t>(q)]);
        }
        out.append(op.gate(), mapped);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = snail_bench::quickMode(argc, argv);
    const int width = quick ? 8 : 10;
    const int trials = quick ? 100 : 150;
    const double pulse_error = 0.003; // 99.7% per native pulse
    const double idle_error = 0.0015; // dephasing per duration unit

    const Design designs[] = {
        {"heavy-hex-20", BasisKind::CNOT, "heavy-hex + CR/CNOT"},
        {"square-16", BasisKind::Sycamore, "square + SYC"},
        {"tree-20", BasisKind::SqISwap, "tree + sqiswap"},
        {"corral11-16", BasisKind::SqISwap, "corral11 + sqiswap"},
        {"hypercube-16", BasisKind::SqISwap, "hypercube + sqiswap"},
    };

    printBanner(std::cout,
                std::string("Monte-Carlo co-design fidelity -- QV width ") +
                    std::to_string(width) + ", pulse err " +
                    TableWriter::num(pulse_error, 4) + ", idle err " +
                    TableWriter::num(idle_error, 4));
    TableWriter table({"design", "pulses", "crit_dur", "no_error_P",
                       "MC_fidelity", "stderr"});

    const Circuit circuit =
        makeBenchmark(BenchmarkKind::QuantumVolume, width, 17);
    for (const Design &design : designs) {
        const CouplingGraph device = namedTopology(design.topology);
        TranspileOptions opts;
        opts.basis = BasisSpec{design.basis};
        opts.seed = 23;
        opts.stochastic_trials = quick ? 6 : 12;
        const TranspileResult r = transpile(circuit, device, opts);

        Rng rng(404);
        const Circuit compact = compactToActive(r.routed);
        const NoiseEstimate est =
            codesignNoiseEstimate(compact, opts.basis, pulse_error,
                                  idle_error, trials, rng);
        table.addRow({design.label,
                      std::to_string(r.metrics.basis_2q_total),
                      TableWriter::num(r.metrics.duration_critical, 1),
                      TableWriter::num(est.no_error_prob, 3),
                      TableWriter::num(est.mean_fidelity, 3),
                      TableWriter::num(est.standard_error, 3)});
    }
    table.print(std::cout);
    std::cout << "\nSimulated fidelity tracks the paper's surrogates: "
                 "fewer pulses and shorter critical paths translate "
                 "into measurably higher end-to-end state fidelity for "
                 "the SNAIL co-designs.\n";
    return 0;
}
