/**
 * @file
 * Reproduces Fig. 15: the n-th-root-of-iSWAP pulse-duration sensitivity
 * study over Haar-random 2Q unitaries (N = 50 in the paper).
 *
 *  - Top left: average approximation infidelity (1 - Fd) vs template size
 *    k for each root n — smaller fractions need more repetitions before
 *    reaching near-exact (< 1e-6) decompositions.
 *  - Top right: the total pulse duration k/n at the near-exact point
 *    still shrinks as n grows.
 *  - Bottom: average total fidelity Ft (Eq. 13) vs the base iSWAP
 *    fidelity — at Fb(iSWAP) = 0.99, 3/4/5-root bases cut infidelity by
 *    roughly 14%/25%/11% relative to sqrt(iSWAP).
 */

#include <iostream>

#include "bench_util.hpp"
#include "codesign/paper.hpp"
#include "common/table.hpp"
#include "fidelity/nroot_study.hpp"

int
main(int argc, char **argv)
{
    using namespace snail;
    const bool quick = snail_bench::quickMode(argc, argv);

    NRootStudyOptions opts;
    if (quick) {
        opts.roots = {2, 3, 4};
        opts.k_max = 6;
        opts.samples = 8;
        opts.optimizer.restarts = 3;
        opts.optimizer.max_iterations = 500;
    } else {
        opts.samples = 50; // N = 50 as in the paper
        opts.optimizer.restarts = 4;
        opts.optimizer.max_iterations = 700;
    }
    std::cerr << "[fig15] running NuOp study (" << opts.samples
              << " samples x " << opts.roots.size() << " roots x "
              << (opts.k_max - opts.k_min + 1) << " template sizes)...\n";
    const NRootStudyResult study = runNRootStudy(opts);

    // --- Panel 1: avg infidelity vs k ---
    printBanner(std::cout, "Fig. 15 (top left): avg infidelity 1-Fd vs k");
    {
        std::vector<std::string> headers{"k"};
        for (double n : study.roots()) {
            headers.push_back("n=" + TableWriter::count(n));
        }
        TableWriter table(headers);
        for (int k = study.kMin(); k <= study.kMax(); ++k) {
            std::vector<std::string> row{std::to_string(k)};
            for (std::size_t ri = 0; ri < study.roots().size(); ++ri) {
                char buf[32];
                std::snprintf(buf, sizeof(buf), "%.2e",
                              study.averageInfidelity(ri, k));
                row.push_back(buf);
            }
            table.addRow(std::move(row));
        }
        table.print(std::cout);
    }

    // --- Panel 2: pulse duration at the near-exact point ---
    printBanner(std::cout,
                "Fig. 15 (top right): pulse duration k/n at convergence");
    {
        TableWriter table({"root n", "min k (<1e-6)", "pulse duration k/n"});
        for (std::size_t ri = 0; ri < study.roots().size(); ++ri) {
            const int k = study.minimalK(ri, 1e-6);
            table.addRow({TableWriter::count(study.roots()[ri]),
                          k < 0 ? std::string("-") : std::to_string(k),
                          k < 0 ? std::string("-")
                                : TableWriter::num(
                                      study.pulseDuration(ri, k), 3)});
        }
        table.print(std::cout);
    }

    // --- Panel 3: total fidelity vs base iSWAP fidelity ---
    printBanner(std::cout,
                "Fig. 15 (bottom): avg total fidelity Ft vs Fb(iSWAP)");
    {
        std::vector<std::string> headers{"Fb(iswap)"};
        for (double n : study.roots()) {
            headers.push_back("n=" + TableWriter::count(n));
        }
        TableWriter table(headers);
        for (double fb = 0.90; fb <= 1.0001; fb += 0.01) {
            std::vector<std::string> row{TableWriter::num(fb, 2)};
            for (std::size_t ri = 0; ri < study.roots().size(); ++ri) {
                row.push_back(TableWriter::num(
                    study.averageTotalFidelity(ri, fb), 4));
            }
            table.addRow(std::move(row));
        }
        table.print(std::cout);
    }

    // --- Headline: infidelity reduction vs sqrt(iSWAP) at Fb = 0.99 ---
    printBanner(std::cout,
                "Infidelity reduction vs sqrt(iSWAP) at Fb = 0.99 "
                "(paper: 14% / 25% / 11% for n = 3/4/5)");
    for (double n : study.roots()) {
        if (n <= 2.0) {
            continue;
        }
        std::cout << "  n = " << n << ": "
                  << 100.0 * infidelityReduction(study, 2.0, n, 0.99)
                  << "%\n";
    }
    return 0;
}
