/**
 * @file
 * Reproduces Fig. 11: total and critical-path SWAP gates for 16-20 qubit
 * implementations of the proposed SNAIL topologies (Tree, Tree-RR,
 * Corral_{1,1}, Corral_{1,2}) against Square-Lattice and Hypercube.
 *
 * Expected shape: the corrals are the best performers, with Corral_{1,1}
 * often needing zero SWAPs thanks to its rich local cliques.
 */

#include <iostream>

#include "bench_util.hpp"
#include "codesign/experiment.hpp"

int
main(int argc, char **argv)
{
    using namespace snail;
    const bool quick = snail_bench::quickMode(argc, argv);

    SweepOptions opts;
    opts.widths = quick ? snail_bench::range(6, 14, 4)
                        : snail_bench::range(4, 16, 2);
    opts.stochastic_trials = quick ? 4 : 10;

    const std::vector<std::string> topologies = {
        "square-16",   "hypercube-16", "tree-20",
        "tree-rr-20",  "corral11-16",  "corral12-16"};
    const auto series = swapSweep(allBenchmarks(), topologies, opts);

    printSeriesTables(std::cout, series, metricSwapsTotal,
                      "Fig. 11 (top): Total SWAP count, SNAIL topologies");
    printSeriesTables(
        std::cout, series, metricSwapsCritical,
        "Fig. 11 (bottom): Critical-path SWAPs, SNAIL topologies");
    return 0;
}
