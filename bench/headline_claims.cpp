/**
 * @file
 * Reproduces the paper's headline quantitative claims (abstract, Secs. 1
 * and 6):
 *
 *  1. On QV circuits from 16 to 80 qubits, Hypercube + sqrt(iSWAP) vs
 *     Heavy-Hex + CNOT: 3.16x fewer total 2Q gates and 6.11x less 2Q
 *     pulse duration; 2.57x fewer total SWAPs and 5.63x fewer
 *     critical-path SWAPs.
 *  2. Observation 1: sqrt(iSWAP) implements ~79% of Haar-random 2Q
 *     unitaries with 2 applications (CNOT: a measure-zero set), giving
 *     the slight information-theoretic advantage.
 *  3. For a 99%-fidelity iSWAP basis, the 4th root reduces average
 *     infidelity by ~25% vs sqrt(iSWAP) (computed by fig15_nroot_fidelity
 *     at full scale; a reduced study reproduces the trend here).
 */

#include <iostream>

#include "bench_util.hpp"
#include "codesign/paper.hpp"
#include "common/table.hpp"
#include "weyl/basis_counts.hpp"

int
main(int argc, char **argv)
{
    using namespace snail;
    const bool quick = snail_bench::quickMode(argc, argv);

    // --- Claim 1: QV 16..80 hypercube vs heavy-hex ---
    SweepOptions opts;
    opts.stochastic_trials = quick ? 4 : 10;
    const Backend heavy_hex = makeBackend("heavy-hex-84", BasisKind::CNOT);
    const Backend hypercube = makeBackend("hypercube-84", BasisKind::SqISwap);
    const std::vector<int> widths =
        quick ? std::vector<int>{16, 48, 80} : snail_bench::range(16, 80, 8);
    std::cerr << "[headline] QV sweep on heavy-hex-84 vs hypercube-84...\n";
    const HeadlineRatios r =
        headlineRatios(heavy_hex, hypercube, widths, opts);

    printBanner(std::cout,
                "Headline 1: Hypercube+sqiswap advantage over "
                "Heavy-Hex+CNOT on QV 16..80 (geomean)");
    TableWriter table({"metric", "measured", "paper"});
    table.addRow({"total SWAPs", TableWriter::num(r.swaps_total, 2),
                  "2.57x"});
    table.addRow({"critical-path SWAPs",
                  TableWriter::num(r.swaps_critical, 2), "5.63x"});
    table.addRow({"total 2Q gates", TableWriter::num(r.basis_2q_total, 2),
                  "3.16x"});
    table.addRow({"2Q pulse duration",
                  TableWriter::num(r.duration_critical, 2), "6.11x"});
    table.print(std::cout);

    // --- Claim 2: Observation 1 decomposition efficiency ---
    printBanner(std::cout,
                "Headline 2 (Observation 1): Haar fraction implementable "
                "with 2 basis gates");
    const int samples = quick ? 500 : 4000;
    TableWriter obs({"basis", "fraction <= 2 uses", "paper"});
    obs.addRow({"sqiswap",
                TableWriter::num(haarFractionWithin(
                                     BasisSpec{BasisKind::SqISwap}, 2,
                                     samples, 99),
                                 3),
                "~0.79"});
    obs.addRow({"cx",
                TableWriter::num(haarFractionWithin(
                                     BasisSpec{BasisKind::CNOT}, 2, samples,
                                     98),
                                 3),
                "~0 (measure zero)"});
    obs.print(std::cout);

    // --- Claim 3: 4th-root infidelity reduction (reduced study) ---
    printBanner(std::cout,
                "Headline 3: n-root iSWAP infidelity reduction vs "
                "sqrt(iSWAP) at Fb = 0.99");
    NRootStudyOptions sopts;
    sopts.roots = {2, 3, 4, 5};
    sopts.samples = quick ? 8 : 24;
    sopts.seed = 2;
    sopts.optimizer.restarts = 3;
    sopts.optimizer.max_iterations = 600;
    std::cerr << "[headline] NuOp study for roots {2,3,4,5}...\n";
    const NRootStudyResult study = runNRootStudy(sopts);
    TableWriter red({"root", "reduction", "paper"});
    red.addRow({"3", TableWriter::num(
                         100.0 * infidelityReduction(study, 2, 3, 0.99), 1) +
                         "%",
                "14%"});
    red.addRow({"4", TableWriter::num(
                         100.0 * infidelityReduction(study, 2, 4, 0.99), 1) +
                         "%",
                "25%"});
    red.addRow({"5", TableWriter::num(
                         100.0 * infidelityReduction(study, 2, 5, 0.99), 1) +
                         "%",
                "11%"});
    red.print(std::cout);
    return 0;
}
