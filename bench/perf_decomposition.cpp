/**
 * @file
 * google-benchmark microbenchmarks for the decomposition stack: Weyl
 * coordinates, full KAK, and the NuOp template optimizer.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "decomp/kak.hpp"
#include "decomp/nuop.hpp"
#include "linalg/random_unitary.hpp"
#include "weyl/basis_counts.hpp"

namespace
{

using namespace snail;

void
BM_WeylCoordinates(benchmark::State &state)
{
    Rng rng(7);
    const Matrix u = haarUnitary(4, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(weylCoordinates(u));
    }
}
BENCHMARK(BM_WeylCoordinates);

void
BM_KakDecompose(benchmark::State &state)
{
    Rng rng(8);
    const Matrix u = haarUnitary(4, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(kakDecompose(u));
    }
}
BENCHMARK(BM_KakDecompose);

void
BM_BasisCount(benchmark::State &state)
{
    Rng rng(9);
    const Matrix u = haarUnitary(4, rng);
    const BasisSpec basis{BasisKind::SqISwap};
    for (auto _ : state) {
        benchmark::DoNotOptimize(basisCount(basis, weylCoordinates(u)));
    }
}
BENCHMARK(BM_BasisCount);

void
BM_NuOpSqiswap(benchmark::State &state)
{
    Rng rng(10);
    const Matrix u = haarUnitary(4, rng);
    const int k = static_cast<int>(state.range(0));
    NuOpOptions opts;
    opts.restarts = 2;
    opts.max_iterations = 400;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            nuopDecompose(u, gates::sqiswap(), k, opts).infidelity);
    }
}
BENCHMARK(BM_NuOpSqiswap)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
